// Collective groups: the NIC-resident descriptors behind the collective
// engine (src/bcl/coll/engine.hpp).
//
// A CollGroup is a set of member endpoints — at most one per node — joined
// into a k-ary combining/forwarding tree.  The kernel driver validates the
// membership and pins the result buffer at registration time
// (Driver::ioctl_register_group), then PIOs this descriptor into NIC SRAM;
// from then on barrier, broadcast, and reduce traffic for the group is
// combined and forwarded entirely by the MCP, with the host involved only
// at the two ends (the posting ioctl and the completion-event poll).
//
// Trees are defined over *relative* member indices so any member can be the
// root of a broadcast or reduction: rel = (index - root) mod n, and the
// canonical k-ary heap layout parent(rel) = (rel-1)/k applies.  The
// descriptor additionally stores the canonical root-0 parent/children used
// by barriers, which are always rooted at member 0.
#pragma once

#include <cstdint>
#include <vector>

#include "bcl/types.hpp"
#include "hw/memory.hpp"
#include "osk/process.hpp"

namespace bcl::coll {

// Combine operator for reductions, applied element-wise over doubles
// (matching the mini-MPI element type).
enum class CollOp : std::uint8_t { kSum = 0, kProd, kMin, kMax };

enum class CollKind : std::uint8_t { kBarrier = 0, kBcast, kReduce };

// Wire opcodes carried in the high byte of Packet::op_flags (the low byte
// is SendOp::kColl, which is what routes the packet to the engine).
enum class CollWire : std::uint8_t {
  kArrive = 1,   // barrier: subtree-complete, child -> parent
  kRelease = 2,  // barrier: root decision, parent -> children
  kData = 3,     // broadcast fragment, parent -> children
  kPartial = 4,  // reduce: combined subtree partial, child -> parent
  kFail = 5,     // group failure (unreachable member), flooded over the tree
};

inline constexpr std::uint16_t coll_op_flags(CollWire wire) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(SendOp::kColl) |
      (static_cast<std::uint16_t>(wire) << 8));
}

// Perfetto flow id for one collective operation: unlike point-to-point
// flows there is exactly one cluster-wide operation per (group, seq), so
// no source-node qualifier is needed — a distinct high bit keeps the id
// space disjoint from flow_key().
inline constexpr std::uint64_t coll_flow_key(std::uint16_t group,
                                             std::uint64_t seq) {
  return (1ull << 62) | (static_cast<std::uint64_t>(group) << 44) |
         (seq & ((1ull << 44) - 1));
}

// Causal-ledger key for one *member's* participation in operation (group,
// seq): the operation key plus the member's node in bits 32..43.  Relies on
// per-group sequence numbers staying below 2^32 (they start at the
// registration origin and advance one per op).
inline constexpr std::uint64_t coll_member_key(std::uint16_t group,
                                               std::uint64_t seq, int node) {
  return coll_flow_key(group, seq) |
         ((static_cast<std::uint64_t>(node) + 1) << 32);
}

// -- k-ary tree arithmetic over relative indices --------------------------------
inline constexpr int tree_rel(int index, int root, int n) {
  return (index - root + n) % n;
}
inline constexpr int tree_abs(int rel, int root, int n) {
  return (rel + root) % n;
}
inline constexpr int tree_parent_rel(int rel, int k) {
  return rel == 0 ? -1 : (rel - 1) / k;
}
inline std::vector<int> tree_children_rel(int rel, int k, int n) {
  std::vector<int> out;
  for (int c = k * rel + 1; c <= k * rel + k && c < n; ++c) out.push_back(c);
  return out;
}
// Depth of the deepest leaf (root = 0) — exported as a gauge.
inline int tree_depth(int n, int k) {
  int depth = 0;
  for (int rel = n - 1; rel > 0; rel = tree_parent_rel(rel, k)) ++depth;
  return depth;
}

// What the register_group trap writes into NIC SRAM.
struct GroupDescriptor {
  std::uint16_t id = 0;
  std::vector<PortId> members;       // one per node, index = member rank
  std::uint16_t my_index = 0;        // this NIC's member
  int arity = 2;                     // k of the forwarding tree
  CollOp default_op = CollOp::kSum;  // combine op registered with the group
  std::uint64_t next_seq = 1;        // registration-time sequence origin

  // Canonical root-0 tree neighbourhood (used by barriers); broadcast and
  // reduce re-root by relative-index arithmetic at packet-processing time.
  int parent = -1;                   // member index, -1 at the root
  std::vector<int> children;         // member indices

  // Pinned result buffer: broadcast payloads and the final reduction land
  // here by DMA, so no per-operation host buffer registration is needed.
  osk::UserBuffer result_buf{};
  std::vector<hw::PhysSegment> result_segs;

  // Set once a member becomes unreachable; every subsequent operation on
  // the group completes immediately with kPeerUnreachable.
  bool failed = false;

  int size() const { return static_cast<int>(members.size()); }
};

// Completion record the engine DMAs into the port's collective event queue
// (one per member per operation).
struct CollEvent {
  std::uint16_t group = 0;
  std::uint64_t seq = 0;  // 0 = group-wide failure notification
  CollKind kind = CollKind::kBarrier;
  std::uint16_t root = 0;
  std::size_t len = 0;  // payload bytes delivered (bcast / reduce at root)
  bool ok = true;
  BclErr err = BclErr::kOk;  // why ok is false
};

// What ioctl_coll_post PIOs into the NIC after validation: the local
// member's participation in operation `seq`.
struct CollPost {
  std::uint16_t group = 0;
  CollKind kind = CollKind::kBarrier;
  std::uint16_t root = 0;  // member index
  CollOp op = CollOp::kSum;
  std::uint64_t seq = 0;
  std::vector<hw::PhysSegment> segs;  // pinned contribution / bcast source
  std::size_t len = 0;
};

inline double coll_apply(CollOp op, double a, double b) {
  switch (op) {
    case CollOp::kSum:
      return a + b;
    case CollOp::kProd:
      return a * b;
    case CollOp::kMin:
      return a < b ? a : b;
    case CollOp::kMax:
      return a > b ? a : b;
  }
  return a;
}

}  // namespace bcl::coll
