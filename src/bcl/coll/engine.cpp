#include "bcl/coll/engine.hpp"

#include <algorithm>
#include <cstring>

#include "bcl/mcp.hpp"

namespace bcl::coll {

namespace {

const char* kind_name(CollKind k) {
  switch (k) {
    case CollKind::kBarrier:
      return "barrier";
    case CollKind::kBcast:
      return "bcast";
    case CollKind::kReduce:
      return "reduce";
  }
  return "?";
}

// Causal-ledger key of `member`'s participation in operation (g.id, seq).
std::uint64_t member_key(const GroupDescriptor& g, std::uint64_t seq,
                         int member) {
  return coll_member_key(
      g.id, seq,
      static_cast<int>(g.members[static_cast<std::size_t>(member)].node));
}

}  // namespace

CollectiveEngine::CollectiveEngine(sim::Engine& eng, hw::Nic& nic, Mcp& mcp,
                                   const CostConfig& cfg, sim::Trace* trace,
                                   sim::MetricRegistry* metrics)
    : eng_{eng},
      nic_{nic},
      mcp_{mcp},
      cfg_{cfg},
      trace_{trace},
      posts_{eng, cfg.request_queue_depth} {
  if (metrics != nullptr) {
    const std::string prefix = nic_.name() + ".coll.";
    metrics->counter(prefix + "posts", [this] { return stats_.posts; });
    metrics->counter(prefix + "rx_packets",
                     [this] { return stats_.packets_in; });
    metrics->counter(prefix + "forwards", [this] { return stats_.forwards; });
    metrics->counter(prefix + "combines", [this] { return stats_.combines; });
    metrics->counter(prefix + "combined_elements",
                     [this] { return stats_.combined_elements; });
    metrics->counter(prefix + "completions",
                     [this] { return stats_.completions; });
    metrics->counter(prefix + "drops", [this] { return stats_.drops; });
    metrics->counter(prefix + "sram_exhausted",
                     [this] { return stats_.sram_exhausted; });
    metrics->counter(prefix + "op_timeouts",
                     [this] { return stats_.op_timeouts; });
    metrics->counter(prefix + "groups_failed",
                     [this] { return stats_.groups_failed; });
    metrics->counter(prefix + "staggered",
                     [this] { return stats_.staggered; });
    metrics->gauge(prefix + "sram_bytes", [this] {
      return static_cast<double>(sram_bytes_);
    });
    metrics->gauge(prefix + "pending_ops", [this] {
      return static_cast<double>(pending_.size());
    });
    metrics->gauge(prefix + "groups", [this] {
      return static_cast<double>(groups_.size());
    });
    metrics->gauge(prefix + "tree_depth", [this] {
      return static_cast<double>(max_tree_depth());
    });
  }
  eng_.spawn_daemon(post_pump());
}

std::string CollectiveEngine::comp() const { return nic_.name(); }

int CollectiveEngine::max_tree_depth() const {
  int depth = 0;
  for (const auto& [id, g] : groups_) {
    depth = std::max(depth, tree_depth(g.size(), g.arity));
  }
  return depth;
}

BclErr CollectiveEngine::register_group(GroupDescriptor desc) {
  const std::uint16_t id = desc.id;
  const auto existing = groups_.find(id);
  if (existing != groups_.end()) {
    // Re-registering over a failure verdict replaces the dead descriptor —
    // the recovery path after a member crash.  A live duplicate id is
    // still a caller error.
    if (!existing->second.failed) return BclErr::kNoResources;
    groups_.erase(existing);
  } else if (groups_.size() >= cfg_.coll_max_groups) {
    return BclErr::kNoResources;
  }
  groups_.emplace(id, std::move(desc));
  // Replay packets from peers that raced ahead of our registration.
  const auto parked = pre_reg_.find(id);
  if (parked != pre_reg_.end()) {
    std::vector<hw::Packet> matched = std::move(parked->second);
    pre_reg_.erase(parked);
    for (auto& p : matched) eng_.spawn_daemon(replay(std::move(p)));
  }
  return BclErr::kOk;
}

sim::Task<void> CollectiveEngine::replay(hw::Packet p) {
  co_await handle_packet(std::move(p));
}

void CollectiveEngine::unregister_group(std::uint16_t id) {
  groups_.erase(id);
  pre_reg_.erase(id);  // late stragglers must not hold a parking slot
}

GroupDescriptor* CollectiveEngine::find_group(std::uint16_t id) {
  const auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : &it->second;
}

CollectiveEngine::Neighborhood CollectiveEngine::neighbors(
    const GroupDescriptor& g, int root) const {
  Neighborhood nb;
  const int n = g.size();
  nb.rel = tree_rel(g.my_index, root, n);
  const int prel = tree_parent_rel(nb.rel, g.arity);
  nb.parent = prel < 0 ? -1 : tree_abs(prel, root, n);
  for (const int c : tree_children_rel(nb.rel, g.arity, n)) {
    nb.children.push_back(tree_abs(c, root, n));
  }
  return nb;
}

hw::Packet CollectiveEngine::make_packet(const GroupDescriptor& g,
                                         int dst_member, CollWire wire,
                                         std::uint64_t seq,
                                         std::uint16_t root,
                                         CollOp op) const {
  hw::Packet p;
  const PortId dst = g.members.at(static_cast<std::size_t>(dst_member));
  p.dst_node = dst.node;
  p.dst_port = dst.port;
  p.src_port = g.members[g.my_index].port;
  p.proto = Mcp::kProto;
  p.kind = hw::PacketKind::kCtrl;
  p.channel = static_cast<std::uint32_t>(g.id) |
              (static_cast<std::uint32_t>(root) << 16);
  p.op_flags = coll_op_flags(wire);
  p.reply_channel = static_cast<std::uint16_t>(op);
  p.msg_id = seq;
  return p;
}

void CollectiveEngine::emit(hw::Packet p) {
  emit_after(sim::Time::zero(), std::move(p));
}

void CollectiveEngine::emit_after(sim::Time delay, hw::Packet p) {
  ++stats_.forwards;
  if (trace_) {
    trace_->flow_step(comp(), "coll",
                      coll_flow_key(static_cast<std::uint16_t>(p.channel),
                                    p.msg_id));
  }
  // Never transmit inline: handle_packet runs on the rx pump, which must
  // not wait for the tx mutex (the session it would block on drains its
  // window through this very pump).
  if (delay <= sim::Time::zero()) {
    eng_.spawn_daemon(mcp_.coll_send(std::move(p)));
  } else {
    ++stats_.staggered;
    eng_.spawn_daemon(delayed_send(delay, std::move(p)));
  }
}

sim::Task<void> CollectiveEngine::delayed_send(sim::Time delay,
                                               hw::Packet p) {
  co_await eng_.sleep(delay);
  co_await mcp_.coll_send(std::move(p));
}

void CollectiveEngine::emit_fanout(std::vector<hw::Packet> batch) {
  // Order by the destinations' current pacing delay so the uncongested
  // children's daemons reach the tx mutex first; each delayed daemon then
  // sleeps out its own stagger before contending.  Ties (typically: every
  // delay is zero right after the cursors drain) break on the quantized
  // congestion extent alpha, so the child whose path echoed the deepest
  // marks launches last and the recovering ones are not re-buried by the
  // fan-out burst.  With congestion control off (or nothing throttled)
  // every key is zero and this degenerates to the old
  // blast-all-children-in-one-tick behavior.
  struct Key {
    sim::Time delay;
    double alpha;
    std::size_t idx;
  };
  std::vector<Key> order;
  order.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    order.push_back({mcp_.cc().stagger_delay(batch[i].dst_node),
                     mcp_.cc().congestion_extent(batch[i].dst_node), i});
  }
  std::stable_sort(order.begin(), order.end(), [](const Key& a, const Key& b) {
    if (a.delay != b.delay) return a.delay < b.delay;
    return a.alpha < b.alpha;
  });
  for (const auto& k : order) {
    emit_after(k.delay, std::move(batch[k.idx]));
  }
}

void CollectiveEngine::reserve_sram(Pending& pd, std::size_t bytes) {
  if (bytes == 0) return;
  if (nic_.sram_reserve(bytes)) {
    pd.sram = bytes;
    sram_bytes_ += bytes;
  } else {
    ++stats_.sram_exhausted;  // accounting only; combining proceeds
  }
}

void CollectiveEngine::erase(const Key& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  if (it->second.sram > 0) {
    nic_.sram_release(it->second.sram);
    sram_bytes_ -= it->second.sram;
  }
  pending_.erase(it);
}

CollectiveEngine::Pending& CollectiveEngine::touch_pending(
    const GroupDescriptor& g, std::uint64_t seq) {
  const Key key{g.id, seq};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    it = pending_.emplace(key, Pending{}).first;
    if (cfg_.coll_op_timeout > sim::Time::zero()) {
      eng_.spawn_daemon(watchdog(g.id, seq));
    }
  }
  return it->second;
}

sim::Task<void> CollectiveEngine::watchdog(std::uint16_t gid,
                                           std::uint64_t seq) {
  co_await eng_.sleep(cfg_.coll_op_timeout);
  const auto pit = pending_.find({gid, seq});
  if (pit == pending_.end()) co_return;  // completed
  GroupDescriptor* g = find_group(gid);
  if (g == nullptr) co_return;  // unregistered meanwhile
  ++stats_.op_timeouts;
  // Record the expiry and fire the post-mortem hook while the victim op's
  // state is still intact; fail_group tears it down next.
  mcp_.report_coll_timeout(gid, seq, kind_name(pit->second.kind));
  co_await fail_group(*g);
}

sim::Task<void> CollectiveEngine::on_peer_failure(hw::NodeId node) {
  std::vector<std::uint16_t> ids;
  for (const auto& [id, g] : groups_) {
    if (g.failed) continue;
    for (const PortId& m : g.members) {
      if (m.node == node) {
        ids.push_back(id);
        break;
      }
    }
  }
  for (const std::uint16_t id : ids) {
    GroupDescriptor* g = find_group(id);
    if (g != nullptr && !g->failed) co_await fail_group(*g);
  }
}

sim::Task<void> CollectiveEngine::fail_group(GroupDescriptor& g) {
  if (g.failed) co_return;
  g.failed = true;
  ++stats_.groups_failed;
  mcp_.recorder().record(
      {eng_.now(), FlightKind::kGroupFailed, 0, 0, 0, g.id});
  // Flood the canonical tree so members that never exchange a packet with
  // the dead node (or with us) still learn within tree-depth hops.
  if (g.parent >= 0) {
    emit(make_packet(g, g.parent, CollWire::kFail, 0, 0, CollOp::kSum));
  }
  for (const int child : g.children) {
    emit(make_packet(g, child, CollWire::kFail, 0, 0, CollOp::kSum));
  }
  // Fail every in-flight operation of the group.
  std::vector<std::pair<std::uint64_t, Pending>> doomed;
  for (const auto& [key, pd] : pending_) {
    if (key.first == g.id) doomed.emplace_back(key.second, pd);
  }
  for (const auto& [seq, pd] : doomed) {
    erase({g.id, seq});
    co_await complete(g, seq, pd.kind, pd.root, 0, false,
                      BclErr::kPeerUnreachable);
  }
  // One group-wide failure notification (seq 0): a member may be blocked
  // on a sequence that never produced a pending entry here (e.g. a
  // broadcast receiver whose root died before sending).
  co_await complete(g, 0, CollKind::kBarrier, 0, 0, false,
                    BclErr::kPeerUnreachable);
}

void CollectiveEngine::on_local_crash() {
  // Complete every in-flight operation with the restart verdict before
  // dropping the SRAM.  complete() copies the descriptor into its frame,
  // so clearing groups_ below cannot invalidate the spawned daemons.
  std::vector<std::pair<Key, Pending>> doomed(pending_.begin(),
                                              pending_.end());
  for (auto& [key, pd] : doomed) {
    GroupDescriptor* g = find_group(key.first);
    erase(key);  // releases the accumulator's SRAM reservation
    if (g != nullptr && !pd.failed) {
      eng_.spawn_daemon(complete(*g, key.second, pd.kind, pd.root, 0, false,
                                 BclErr::kPeerRestarted));
    }
  }
  // One group-wide seq-0 failure per live group: a member may be blocked
  // on a sequence that never produced a pending entry here.
  for (auto& [id, g] : groups_) {
    if (g.failed) continue;
    ++stats_.groups_failed;
    eng_.spawn_daemon(complete(g, 0, CollKind::kBarrier, 0, 0, false,
                               BclErr::kPeerRestarted));
  }
  groups_.clear();
  pre_reg_.clear();
}

sim::Task<void> CollectiveEngine::post_pump() {
  for (;;) {
    CollPost post = co_await posts_.recv();
    co_await handle_post(std::move(post));
  }
}

sim::Task<void> CollectiveEngine::handle_post(CollPost post) {
  ++stats_.posts;
  co_await nic_.lanai().use(cfg_.mcp_coll_proc);
  GroupDescriptor* g = find_group(post.group);
  if (g == nullptr) {
    ++stats_.drops;  // driver validated; only an unregister race lands here
    co_return;
  }
  mcp_.recorder().record(
      {eng_.now(), FlightKind::kCollPost, 0, post.seq, 0, g->id});
  if (trace_) {
    trace_->flow_step(comp(), "coll", coll_flow_key(g->id, post.seq));
    // The local member's causal record: one per member per operation,
    // linked into the fan-out tree at the emit sites below.
    trace_->msg_begin(member_key(*g, post.seq, g->my_index),
                      kind_name(post.kind),
                      static_cast<int>(g->members[g->my_index].node), -1,
                      post.len);
  }
  if (g->failed) {
    // The group lost a member; every subsequent op fails fast.
    co_await complete(*g, post.seq, post.kind, post.root, 0, false,
                      BclErr::kPeerUnreachable);
    co_return;
  }
  switch (post.kind) {
    case CollKind::kBarrier: {
      Pending& pd = touch_pending(*g, post.seq);
      pd.kind = CollKind::kBarrier;
      pd.local_posted = true;
      ++pd.have;
      co_await handle_barrier_arrive(*g, pd, post.seq);
      break;
    }
    case CollKind::kReduce: {
      Pending& pd = touch_pending(*g, post.seq);
      pd.kind = CollKind::kReduce;
      pd.root = post.root;
      pd.op = post.op;
      pd.len = std::max(pd.len, post.len);
      // The local contribution moves host -> NIC SRAM by DMA and becomes
      // (or merges into) the accumulator.
      std::vector<std::byte> bytes;
      if (post.len > 0) {
        co_await nic_.dma_gather(slice_segments(post.segs, 0, post.len),
                                 bytes, cfg_.dma_lead_bytes);
      }
      pd.acc.resize(post.len / sizeof(double));
      if (!bytes.empty()) {
        std::memcpy(pd.acc.data(), bytes.data(),
                    pd.acc.size() * sizeof(double));
      }
      reserve_sram(pd, post.len);
      pd.acc_init = true;
      // Child partials that arrived before the post combine now.
      std::vector<hw::Packet> stash = std::move(pd.stash);
      pd.stash.clear();
      for (const auto& sp : stash) co_await combine_fragment(*g, pd, sp);
      pd.local_posted = true;
      ++pd.have;
      co_await advance_reduce(*g, pd, post.seq);
      break;
    }
    case CollKind::kBcast: {
      // Only the root member posts a broadcast; everyone else just polls.
      const Neighborhood nb = neighbors(*g, post.root);
      if (trace_) {
        for (const int child : nb.children) {
          trace_->msg_link(member_key(*g, post.seq, g->my_index),
                           member_key(*g, post.seq, child));
        }
      }
      const std::uint32_t frags = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(
              1, (post.len + cfg_.mtu - 1) / cfg_.mtu));
      for (std::uint32_t i = 0; i < frags; ++i) {
        const std::uint64_t off = static_cast<std::uint64_t>(i) * cfg_.mtu;
        const std::size_t flen = static_cast<std::size_t>(
            std::min<std::uint64_t>(cfg_.mtu, post.len - off));
        std::vector<std::byte> chunk;
        if (flen > 0) {
          co_await nic_.dma_gather(slice_segments(post.segs, off, flen),
                                   chunk, cfg_.dma_lead_bytes);
        }
        std::vector<hw::Packet> batch;
        batch.reserve(nb.children.size());
        for (const int child : nb.children) {
          hw::Packet q = make_packet(*g, child, CollWire::kData, post.seq,
                                     post.root, post.op);
          q.frag_index = i;
          q.frag_count = frags;
          q.msg_bytes = post.len;
          q.offset = off;
          q.payload = chunk;
          batch.push_back(std::move(q));
        }
        emit_fanout(std::move(batch));
      }
      co_await complete(*g, post.seq, CollKind::kBcast, post.root, post.len,
                        true);
      break;
    }
  }
}

sim::Task<void> CollectiveEngine::handle_packet(hw::Packet p) {
  ++stats_.packets_in;
  co_await nic_.lanai().use(cfg_.mcp_coll_proc);
  const std::uint16_t gid = static_cast<std::uint16_t>(p.channel & 0xffff);
  const std::uint16_t root = static_cast<std::uint16_t>(p.channel >> 16);
  const auto it = groups_.find(gid);
  if (it == groups_.end()) {
    // A peer beat our registration: park the packet for replay.  The
    // budget is per group id — and distinct parked ids are bounded like
    // descriptor slots — so one group that is slow to register (or never
    // registers) cannot exhaust the pool for unrelated groups.
    auto parked = pre_reg_.find(gid);
    if (parked == pre_reg_.end()) {
      if (pre_reg_.size() >= cfg_.coll_max_groups) {
        ++stats_.drops;
        co_return;
      }
      parked = pre_reg_.emplace(gid, std::vector<hw::Packet>{}).first;
    }
    if (parked->second.size() < cfg_.coll_park_per_group) {
      parked->second.push_back(std::move(p));
    } else {
      ++stats_.drops;
    }
    co_return;
  }
  GroupDescriptor& g = it->second;
  const std::uint64_t seq = p.msg_id;
  if (trace_) trace_->flow_step(comp(), "coll", coll_flow_key(gid, seq));
  const auto wire = static_cast<CollWire>(p.op_flags >> 8);
  if (wire == CollWire::kFail) {
    co_await fail_group(g);  // no-op if already failed (stops the flood)
    co_return;
  }
  if (g.failed) {
    ++stats_.drops;  // the group is dead; its traffic is noise
    co_return;
  }
  switch (wire) {
    case CollWire::kArrive: {
      Pending& pd = touch_pending(g, seq);
      pd.kind = CollKind::kBarrier;
      ++pd.have;
      co_await handle_barrier_arrive(g, pd, seq);
      break;
    }
    case CollWire::kRelease:
      co_await handle_barrier_release(g, seq);
      break;
    case CollWire::kData: {
      Pending& pd = touch_pending(g, seq);
      pd.root = root;
      co_await handle_bcast_packet(g, pd, seq, std::move(p));
      break;
    }
    case CollWire::kPartial: {
      Pending& pd = touch_pending(g, seq);
      pd.root = root;
      co_await handle_reduce_packet(g, pd, seq, std::move(p));
      break;
    }
    default:
      ++stats_.drops;
      break;
  }
}

// Barriers always run on the canonical root-0 tree stored in the
// descriptor: combine arrivals up, then release down.
sim::Task<void> CollectiveEngine::handle_barrier_arrive(GroupDescriptor& g,
                                                        Pending& pd,
                                                        std::uint64_t seq) {
  const int need = static_cast<int>(g.children.size()) + 1;
  if (!pd.local_posted || pd.have < need || pd.sent_up) co_return;
  pd.sent_up = true;
  if (g.parent < 0) {
    // Root: the whole group has arrived; release the tree.
    std::vector<hw::Packet> batch;
    batch.reserve(g.children.size());
    for (const int child : g.children) {
      if (trace_) {
        trace_->msg_link(member_key(g, seq, g.my_index),
                         member_key(g, seq, child));
      }
      batch.push_back(make_packet(g, child, CollWire::kRelease, seq, 0,
                                  pd.op));
    }
    emit_fanout(std::move(batch));
    // The host completion is off the combine path: the release cascade is
    // already launched, and the event-build/DMA charges run as a daemon so
    // they never serialize behind the next hop's packet processing.
    erase({g.id, seq});
    eng_.spawn_daemon(complete(g, seq, CollKind::kBarrier, 0, 0, true));
  } else {
    if (trace_) {
      trace_->msg_link(member_key(g, seq, g.parent),
                       member_key(g, seq, g.my_index));
    }
    emit(make_packet(g, g.parent, CollWire::kArrive, seq, 0, pd.op));
    // Completion arrives with the release from above.
  }
}

sim::Task<void> CollectiveEngine::handle_barrier_release(GroupDescriptor& g,
                                                         std::uint64_t seq) {
  std::vector<hw::Packet> batch;
  batch.reserve(g.children.size());
  for (const int child : g.children) {
    if (trace_) {
      trace_->msg_link(member_key(g, seq, g.my_index),
                       member_key(g, seq, child));
    }
    batch.push_back(
        make_packet(g, child, CollWire::kRelease, seq, 0, CollOp::kSum));
  }
  emit_fanout(std::move(batch));
  // Asynchronous completion: the old inline event-build + event-DMA here
  // added ~1.25 us of rx-pump occupancy at EVERY tree level, which is what
  // kept the NIC barrier under 2x the host tree.  The release keeps
  // cascading; the host learns via the daemon.
  erase({g.id, seq});
  eng_.spawn_daemon(complete(g, seq, CollKind::kBarrier, 0, 0, true));
  co_return;
}

sim::Task<void> CollectiveEngine::handle_reduce_packet(GroupDescriptor& g,
                                                       Pending& pd,
                                                       std::uint64_t seq,
                                                       hw::Packet p) {
  pd.kind = CollKind::kReduce;
  pd.op = static_cast<CollOp>(p.reply_channel);
  pd.len = std::max(pd.len, static_cast<std::size_t>(p.msg_bytes));
  const bool last = p.frag_index + 1 == p.frag_count;
  if (!pd.acc_init) {
    pd.stash.push_back(std::move(p));  // no accumulator until the post
  } else {
    co_await combine_fragment(g, pd, p);
  }
  if (last) {
    ++pd.have;  // one child subtree fully accounted
    co_await advance_reduce(g, pd, seq);
  }
}

sim::Task<void> CollectiveEngine::combine_fragment(GroupDescriptor& g,
                                                   Pending& pd,
                                                   const hw::Packet& p) {
  (void)g;
  const std::size_t elems = p.payload.size() / sizeof(double);
  if (elems > 0) {
    co_await nic_.lanai().use(cfg_.coll_combine_per_element *
                              static_cast<double>(elems));
    const std::size_t base =
        static_cast<std::size_t>(p.offset) / sizeof(double);
    if (base + elems > pd.acc.size()) pd.acc.resize(base + elems);
    for (std::size_t i = 0; i < elems; ++i) {
      double v = 0;
      std::memcpy(&v, p.payload.data() + i * sizeof(double), sizeof(double));
      pd.acc[base + i] = coll_apply(pd.op, pd.acc[base + i], v);
    }
  }
  ++stats_.combines;
  stats_.combined_elements += elems;
}

void CollectiveEngine::send_partial_up(const GroupDescriptor& g,
                                       int parent_member, std::uint64_t seq,
                                       const Pending& pd) {
  const std::uint32_t frags = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (pd.len + cfg_.mtu - 1) / cfg_.mtu));
  for (std::uint32_t i = 0; i < frags; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * cfg_.mtu;
    const std::size_t flen = static_cast<std::size_t>(
        std::min<std::uint64_t>(cfg_.mtu, pd.len - off));
    hw::Packet q =
        make_packet(g, parent_member, CollWire::kPartial, seq, pd.root,
                    pd.op);
    q.frag_index = i;
    q.frag_count = frags;
    q.msg_bytes = pd.len;
    q.offset = off;
    if (flen > 0) {
      q.payload.resize(flen);
      std::memcpy(q.payload.data(),
                  reinterpret_cast<const std::byte*>(pd.acc.data()) + off,
                  flen);
    }
    emit(std::move(q));
  }
}

sim::Task<void> CollectiveEngine::advance_reduce(GroupDescriptor& g,
                                                 Pending& pd,
                                                 std::uint64_t seq) {
  const Neighborhood nb = neighbors(g, pd.root);
  const int need = static_cast<int>(nb.children.size()) + 1;
  if (!pd.acc_init || pd.have < need || pd.sent_up) co_return;
  pd.sent_up = true;
  if (nb.rel == 0) {
    // Root: DMA the final vector into the registration-pinned result
    // buffer — the only host DMA of the whole reduction.
    if (pd.len > 0) {
      std::vector<std::byte> bytes(pd.len);
      std::memcpy(bytes.data(), pd.acc.data(), pd.len);
      co_await nic_.dma_scatter(bytes,
                                slice_segments(g.result_segs, 0, pd.len),
                                cfg_.dma_lead_bytes);
    }
    co_await complete(g, seq, CollKind::kReduce, pd.root, pd.len, true);
  } else {
    // Interior/leaf: hand the combined subtree partial to the parent; the
    // host is never touched.
    if (trace_) {
      trace_->msg_link(member_key(g, seq, nb.parent),
                       member_key(g, seq, g.my_index));
    }
    send_partial_up(g, nb.parent, seq, pd);
    co_await complete(g, seq, CollKind::kReduce, pd.root, 0, true);
  }
  erase({g.id, seq});
}

sim::Task<void> CollectiveEngine::handle_bcast_packet(GroupDescriptor& g,
                                                      Pending& pd,
                                                      std::uint64_t seq,
                                                      hw::Packet p) {
  pd.kind = CollKind::kBcast;
  pd.len = static_cast<std::size_t>(p.msg_bytes);
  if (trace_ && pd.frags_seen == 0) {
    // Non-root members never post; their record starts at the first
    // fragment (the parent edge arrived with msg_link, possibly earlier).
    trace_->msg_begin(member_key(g, seq, g.my_index), "bcast",
                      static_cast<int>(g.members[g.my_index].node), -1,
                      static_cast<std::size_t>(p.msg_bytes));
  }
  // Forward to children first (cut-through, straight from the packet
  // buffer), then scatter the fragment into the pinned result buffer.
  const Neighborhood nb = neighbors(g, pd.root);
  std::vector<hw::Packet> batch;
  batch.reserve(nb.children.size());
  for (const int child : nb.children) {
    if (trace_) {
      trace_->msg_link(member_key(g, seq, g.my_index),
                       member_key(g, seq, child));
    }
    hw::Packet q = p;
    const PortId dst = g.members.at(static_cast<std::size_t>(child));
    q.dst_node = dst.node;
    q.dst_port = dst.port;
    q.src_port = g.members[g.my_index].port;
    q.seq = 0;
    q.ack = 0;
    q.corrupted = false;
    q.ecn = false;  // marks belong to the inbound path, not the re-emit
    q.retransmitted = false;  // ditto for the inbound copy's retx stamp
    q.route.clear();
    q.route_pos = 0;
    batch.push_back(std::move(q));
  }
  emit_fanout(std::move(batch));
  if (!p.payload.empty() && !pd.failed) {
    if (p.offset + p.payload.size() > g.result_buf.len) {
      // This member registered a smaller result buffer than the root's
      // payload.  Fail the operation visibly — a silent drop would leave
      // the polling host waiting forever — and let the remaining
      // fragments drain below so the pending entry is reclaimed.
      ++stats_.drops;
      pd.failed = true;
      co_await complete(g, seq, CollKind::kBcast, pd.root, 0, false,
                        BclErr::kTooBig);
    } else {
      co_await nic_.dma_scatter(
          p.payload,
          slice_segments(g.result_segs, p.offset, p.payload.size()),
          cfg_.dma_lead_bytes);
    }
  }
  ++pd.frags_seen;
  if (pd.frags_seen == p.frag_count) {
    if (!pd.failed) {
      co_await complete(g, seq, CollKind::kBcast, pd.root,
                        static_cast<std::size_t>(p.msg_bytes), true);
    }
    erase({g.id, seq});
  }
}

sim::Task<void> CollectiveEngine::complete(GroupDescriptor g,
                                           std::uint64_t seq, CollKind kind,
                                           std::uint16_t root,
                                           std::size_t len, bool ok,
                                           BclErr err) {
  Port* port = mcp_.find_port(g.members[g.my_index].port);
  co_await nic_.lanai().use(cfg_.mcp_event_proc);
  co_await eng_.sleep(cfg_.event_dma);
  ++stats_.completions;
  if (trace_) {
    // Mirror the driver's convention: only the operation's root member
    // (member 0 for barriers) terminates the per-collective flow arrow.
    const std::uint16_t origin = kind == CollKind::kBarrier ? 0 : root;
    if (g.my_index == origin) {
      trace_->flow_end(comp(), "coll", coll_flow_key(g.id, seq));
    } else {
      trace_->flow_step(comp(), "coll", coll_flow_key(g.id, seq));
    }
    trace_->msg_end(member_key(g, seq, g.my_index), ok);
  }
  if (port != nullptr) {
    co_await port->coll_events(g.id).send(CollEvent{g.id, seq, kind, root,
                                                    len, ok, err});
  }
}

}  // namespace bcl::coll
