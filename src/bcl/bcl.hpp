// Umbrella header: the public API of the BCL semi-user-level communication
// library.  See README.md for a quickstart and DESIGN.md for architecture.
#pragma once

#include "bcl/coll/port.hpp"  // CollPort: NIC-resident collectives
#include "bcl/config.hpp"    // CostConfig, ClusterConfig
#include "bcl/library.hpp"   // Endpoint: send/recv/RMA
#include "bcl/stack.hpp"     // BclCluster, NodeStack
#include "bcl/types.hpp"     // PortId, ChannelRef, events, errors
