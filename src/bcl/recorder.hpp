// Per-NIC flight recorder: a bounded ring of the last N protocol events
// (sends, retransmit episodes, timeouts, credit stalls, collective posts
// and failures).  The MCP writes into it on the hot path at O(1) cost; the
// post-mortem dump (bcl/postmortem.hpp) snapshots it when a peer is
// declared unreachable or a collective times out, preserving the timeline
// that led to the failure — the retransmit storm, not just its aftermath.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/packet.hpp"
#include "sim/time.hpp"

namespace bcl {

enum class FlightKind : std::uint8_t {
  kSend = 0,        // data packet handed to the wire (msg_id, seq)
  kRetransmit,      // go-back-N resend of one packet
  kTimeout,         // RTO fired (aux = backoff level)
  kFastRetransmit,  // dup-ack threshold crossed
  kRnr,             // receiver-not-ready NACK received (aux = hold us)
  kWindowStall,     // send blocked on the full window
  kAckRx,           // cumulative ack received (seq = ack value)
  kCreditGrant,     // flow-control grant applied (aux = new limit)
  kCollPost,        // collective op posted (msg_id = seq, aux = group)
  kCollTimeout,     // collective watchdog fired (msg_id = seq, aux = group)
  kGroupFailed,     // collective group torn down (aux = group)
  kPeerFailed,      // retry budget exhausted; peer declared unreachable
  kCrash,           // local MCP fail-stopped (aux = incarnation at death)
  kRestart,         // local MCP rebooted (aux = new incarnation)
  kPeerRestart,     // higher incarnation seen from peer (aux = new epoch)
  kSyn,             // re-establishment SYN (seq = iss; aux: 0 tx, 1 rx)
  kSynAck,          // handshake completed; session re-established
  kProbe,           // revival probe sent toward an unreachable peer
  kPathFailover,    // session rotated to a new fabric path (seq = old path,
                    // aux = new path)
  kPathRestore,     // quarantined path answered a probe (aux = path id)
  kRouteError,      // switch discarded a malformed route (aux = switch-ish)
};

inline const char* to_string(FlightKind k) {
  switch (k) {
    case FlightKind::kSend: return "send";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kFastRetransmit: return "fast-retransmit";
    case FlightKind::kRnr: return "rnr";
    case FlightKind::kWindowStall: return "window-stall";
    case FlightKind::kAckRx: return "ack-rx";
    case FlightKind::kCreditGrant: return "credit-grant";
    case FlightKind::kCollPost: return "coll-post";
    case FlightKind::kCollTimeout: return "coll-timeout";
    case FlightKind::kGroupFailed: return "group-failed";
    case FlightKind::kPeerFailed: return "peer-failed";
    case FlightKind::kCrash: return "mcp-crash";
    case FlightKind::kRestart: return "mcp-restart";
    case FlightKind::kPeerRestart: return "peer-restart";
    case FlightKind::kSyn: return "syn";
    case FlightKind::kSynAck: return "syn-ack";
    case FlightKind::kProbe: return "revival-probe";
    case FlightKind::kPathFailover: return "path-failover";
    case FlightKind::kPathRestore: return "path-restore";
    case FlightKind::kRouteError: return "route-error";
  }
  return "?";
}

struct FlightEvent {
  sim::Time t;
  FlightKind kind = FlightKind::kSend;
  hw::NodeId peer = 0;
  std::uint64_t msg_id = 0;
  std::uint32_t seq = 0;
  std::uint64_t aux = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity) : cap_{capacity} {
    ring_.reserve(cap_);
  }

  void record(FlightEvent e) {
    if (cap_ == 0) return;
    if (ring_.size() < cap_) {
      ring_.push_back(e);
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % cap_;
    }
    ++total_;
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return ring_.size(); }
  // Total events ever recorded (size() once the ring wrapped).
  std::uint64_t total() const { return total_; }

  // Events in arrival order, oldest first.
  std::vector<FlightEvent> snapshot() const {
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t total_ = 0;
  std::vector<FlightEvent> ring_;
};

}  // namespace bcl
