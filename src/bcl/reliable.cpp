#include "bcl/reliable.hpp"

#include <algorithm>
#include <vector>

#include "bcl/cc/controller.hpp"
#include "sim/trace.hpp"

namespace bcl {

TxSession::TxSession(sim::Engine& eng, hw::Nic& nic, const CostConfig& cfg,
                     std::uint64_t seed, bool handshake)
    : eng_{eng},
      nic_{nic},
      cfg_{cfg},
      window_{eng, cfg.window},
      rng_{seed},
      next_seq_{cfg.first_seq},
      last_ack_{cfg.first_seq - 1},
      established_{eng} {
  if (!handshake) established_.open();
}

sim::Task<BclErr> TxSession::send(hw::Packet p) {
  if (unreachable_) co_return fail_err_;
  if (!established_.is_open()) {
    // Handshake session: data holds until the SYN-ACK lands.  poison()
    // opens the gate too, so a failed handshake surfaces here as an error
    // instead of a parked-forever sender.
    co_await established_.wait();
    if (unreachable_) co_return fail_err_;
  }
  if (!window_.try_acquire()) {
    ++window_stalls_;  // go-back-N window full: the MCP tx path blocks here
    rec(FlightKind::kWindowStall, p.msg_id);
    co_await window_.acquire();
    // poison() releases parked senders; they must not transmit.
    if (unreachable_) co_return fail_err_;
  }
  // First launches are paced by the MCP before it takes the tx mutex (a
  // paced wait here would head-of-line block every other destination's
  // egress); only the session-originated resends pace inside the session.
  p.seq = next_seq_++;
  p.tx_stamp = eng_.now();
  if (path_current_) p.path_id = path_current_();
  rec(FlightKind::kSend, p.msg_id, p.seq);
  if (unacked_.empty()) last_progress_ = eng_.now();
  unacked_.push_back({p, eng_.now(), false});  // retransmit copy
  arm_timer();
  co_await nic_.transmit(std::move(p));
  co_return BclErr::kOk;
}

void TxSession::on_ack(std::uint32_t ack, sim::Time echo_stamp) {
  if (unreachable_) return;
  std::int64_t released = 0;
  bool have_sample = false;
  sim::Time sample = sim::Time::zero();
  // Timestamp echo: the receiver reflected the launch time of the packet
  // that triggered this ack, so the sample is valid even when that packet
  // was a retransmission — without it, Karn's rule silences the estimator
  // exactly when a congested fabric inflates the RTT past the current RTO
  // and every window gets resent before its (late) ack returns.
  const bool have_echo =
      echo_stamp > sim::Time::zero() && echo_stamp <= eng_.now();
  while (!unacked_.empty() && seq_leq(unacked_.front().pkt.seq, ack)) {
    // Karn's rule fallback for stampless acks: only packets that were never
    // retransmitted produce RTT samples (the newest released one is the
    // tightest measurement).
    if (!have_echo && !unacked_.front().retransmitted) {
      sample = eng_.now() - unacked_.front().sent_at;
      have_sample = true;
    }
    unacked_.pop_front();
    ++released;
  }
  if (have_echo) {
    sample = eng_.now() - echo_stamp;
    have_sample = true;
    // An echo-stamped sample is valid even when this ack releases nothing:
    // a duplicate cumulative ack past a go-back-N hole still reflects the
    // launch time of the (out-of-order) packet that triggered it.  During
    // a congested window's replay these dup acks are the only acks flowing
    // — dropping their samples re-silences the estimator exactly when the
    // RTT is inflating, which is what the echo exists to prevent.
    if (released == 0 && !unacked_.empty() && ack == last_ack_) {
      note_rtt(sample);
    }
  }
  if (released > 0) {
    if (have_sample) note_rtt(sample);
    last_progress_ = eng_.now();
    last_ack_ = ack;
    dup_acks_ = 0;
    backoff_level_ = 0;
    consecutive_timeouts_ = 0;
    if (path_good_) path_good_();
    if (in_recovery_ && seq_leq(recover_, ack)) in_recovery_ = false;
    window_.release(released);
    rec(FlightKind::kAckRx, 0, ack, static_cast<std::uint64_t>(released));
    flush_notifies(ack);
  } else if (!unacked_.empty() && ack == last_ack_) {
    // Duplicate cumulative ack: the receiver is re-acking because packets
    // arrive out of order past a hole.  k of them and we resend the window
    // now instead of waiting out the RTO — but at most once per window
    // (`in_recovery_`): dup acks echoing an in-flight replay carry no new
    // loss information.
    if (cfg_.dupack_k > 0 && ++dup_acks_ >= cfg_.dupack_k &&
        !retransmitting_ && !in_recovery_ && eng_.now() >= rnr_hold_until_) {
      dup_acks_ = 0;
      ++fast_retransmits_;
      rec(FlightKind::kFastRetransmit, 0, ack);
      eng_.spawn_daemon(retransmit_window());
    }
  }
  // else: stale ack from before last_ack_ (late duplicate on the wire).
}

void TxSession::on_rnr(std::uint32_t ack, sim::Time hold) {
  if (unreachable_) return;
  ++rnr_events_;
  rec(FlightKind::kRnr, 0, ack,
      static_cast<std::uint64_t>(hold.to_us() > 0 ? hold.to_us() : 0));
  // The NACK still carries a cumulative ack: release the prefix the
  // receiver did take.  No RTT sample — the reply timing reflects pool
  // pressure, not path delay (same spirit as Karn's rule).
  std::int64_t released = 0;
  while (!unacked_.empty() && seq_leq(unacked_.front().pkt.seq, ack)) {
    unacked_.pop_front();
    ++released;
  }
  if (released > 0) {
    last_ack_ = ack;
    window_.release(released);
    flush_notifies(ack);
  }
  // An RNR proves the peer is alive and responsive: the retry budget,
  // backoff ladder, and dup-ack count all restart.  A merely-slow receiver
  // can therefore never ripen into kPeerUnreachable.
  consecutive_timeouts_ = 0;
  backoff_level_ = 0;
  dup_acks_ = 0;
  if (path_good_) path_good_();
  last_progress_ = eng_.now();
  if (hold <= sim::Time::zero()) hold = cfg_.fc_rnr_backoff;
  rnr_hold_until_ = eng_.now() + hold;
  if (!rnr_wait_armed_ && !unacked_.empty()) {
    rnr_wait_armed_ = true;
    eng_.spawn_daemon(rnr_resume(hold));
  }
}

sim::Task<void> TxSession::rnr_resume(sim::Time hold) {
  co_await eng_.sleep(hold);
  rnr_wait_armed_ = false;
  if (!unacked_.empty() && !unreachable_) co_await retransmit_window();
}

void TxSession::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  eng_.spawn_daemon(timer());
}

sim::Task<void> TxSession::timer() {
  for (;;) {
    const sim::Time wait = effective_rto();
    co_await eng_.sleep(wait);
    if (unacked_.empty() || unreachable_) break;  // let the engine drain
    // Inside a receiver-not-ready hold the quiet is intentional: the
    // rnr_resume daemon owns the paced resend, and counting the silence
    // as timeouts would burn the retry budget against a live peer.
    if (eng_.now() < rnr_hold_until_) continue;
    if (eng_.now() - last_progress_ >= wait && !retransmitting_) {
      ++timeouts_;
      rec(FlightKind::kTimeout, 0, 0,
          static_cast<std::uint64_t>(backoff_level_));
      // Charge the expiry to the current fabric path before it can burn
      // the retry budget: a rotation hands the fresh path a fresh
      // escalation ladder, so a single dead spine is survived well before
      // the budget ripens into a peer-failure verdict.
      if (path_strike_ && path_strike_()) {
        consecutive_timeouts_ = 0;
        backoff_level_ = 0;
      }
      if (cfg_.max_retries > 0 &&
          ++consecutive_timeouts_ > cfg_.max_retries) {
        fail_peer();
        break;
      }
      co_await retransmit_window();
      if (backoff_level_ < cfg_.rto_backoff_cap) ++backoff_level_;
    }
  }
  timer_armed_ = false;
}

sim::Task<void> TxSession::retransmit_window() {
  if (retransmitting_ || unreachable_ || unacked_.empty()) co_return;
  retransmitting_ = true;
  // NewReno-style recovery point: the replay's own seq-dropped copies each
  // come back as one more duplicate cumulative ack, so without this fence
  // a paced replay (resends spread in time) would count its own echoes up
  // to dupack_k and re-trigger itself until the RTO fired.  Suppress fast
  // retransmit until the cumulative ack passes everything outstanding now;
  // the RTO stays armed as the backstop if the replay itself is lost.
  in_recovery_ = true;
  recover_ = unacked_.back().pkt.seq;
  // Snapshot before the first suspension point; mark everything outstanding
  // as retransmitted up front so acks racing the resend obey Karn's rule.
  std::vector<std::uint32_t> seqs;
  seqs.reserve(unacked_.size());
  for (auto& o : unacked_) {
    seqs.push_back(o.pkt.seq);
    o.retransmitted = true;
  }
  const auto find_seq = [this](std::uint32_t s) {
    return std::find_if(unacked_.begin(), unacked_.end(),
                        [s](const Outstanding& o) { return o.pkt.seq == s; });
  };
  for (const std::uint32_t s : seqs) {
    if (unreachable_) break;
    auto it = find_seq(s);
    if (it == unacked_.end()) continue;  // acked while we were suspended
    if (cc_ != nullptr) {
      // Retransmissions launch through the pacer too — this is the loop
      // that otherwise becomes a storm: every timeout replays the whole
      // window into the very link that is dropping for congestion.  Once
      // echoes have raised alpha the pacer charges and spaces the replay;
      // toward a quiet destination it is wire-clocked like any first
      // transmission (spacing a replay the wire would space anyway only
      // reorders it against concurrent launches).
      co_await cc_->pace(it->pkt.dst_node, it->pkt.wire_bytes());
      if (unreachable_) break;
      it = find_seq(s);
      if (it == unacked_.end()) continue;  // acked during the paced wait
    }
    hw::Packet copy = it->pkt;
    copy.retransmitted = true;  // per-link retransmit heat
    copy.tx_stamp = eng_.now();  // the echo samples THIS copy's round trip
    // Re-stamp the path: after a failover the whole in-window replay must
    // ride the new route, not the dead one the copies were born with.
    if (path_current_) copy.path_id = path_current_();
    ++retransmissions_;
    rec(FlightKind::kRetransmit, copy.msg_id, s);
    if (trace_ != nullptr) {
      trace_->msg_retransmit(flow_key(nic_.node(), copy.msg_id));
    }
    co_await nic_.transmit(std::move(copy));
  }
  last_progress_ = eng_.now();
  retransmitting_ = false;
}

sim::Time TxSession::rto() const {
  if (!cfg_.adaptive_rto || !have_srtt_) return cfg_.rto;
  sim::Time r = srtt_ + rttvar_ * 4.0;
  if (r < cfg_.rto_min) r = cfg_.rto_min;
  // rto_max bounds loss detection, but must never clamp the RTO below the
  // measured round trip: a wormhole fabric under incast inflates RTT past
  // any fixed cap without dropping anything, and an RTO below SRTT fires a
  // guaranteed-spurious go-back-N resend for every window — the very storm
  // the rate controller is trying to quench.
  sim::Time cap = cfg_.rto_max;
  if (srtt_ + rttvar_ > cap) cap = srtt_ + rttvar_;
  if (r > cap) r = cap;
  return r;
}

sim::Time TxSession::effective_rto() {
  const sim::Time base = rto();
  // The backoff ladder is capped at rto_max or the measured-RTT base,
  // whichever is larger — rto() may legitimately exceed rto_max when the
  // observed round trip does (see the comment there), and re-clamping
  // below it would undo that.
  const sim::Time cap = cfg_.rto_max > base ? cfg_.rto_max : base;
  sim::Time r = base;
  for (int i = 0; i < backoff_level_ && r < cap; ++i) r = r * 2.0;
  if (r > cap) r = cap;
  if (cfg_.rto_backoff_jitter > 0.0) {
    r = r * (1.0 + cfg_.rto_backoff_jitter * rng_.uniform());
  }
  // Drain-aware allowance: at the congestion-controlled floor the unacked
  // window's serialization alone (16 x ~4KB at 8 MB/s ~ 8 ms) exceeds
  // rto_max, so a throttled destination would fire guaranteed-spurious
  // timeouts forever.  The pacer's drain time is added on top of the
  // clamped backoff RTO, not folded into it, so the clamp still bounds the
  // loss-detection component.
  if (cc_ != nullptr && !unacked_.empty()) {
    std::size_t bytes = 0;
    for (const auto& o : unacked_) bytes += o.pkt.wire_bytes();
    r += cc_->drain_time(peer_, bytes);
  }
  return r;
}

void TxSession::note_rtt(sim::Time sample) {
  ++rtt_samples_;
  if (!have_srtt_) {
    have_srtt_ = true;
    srtt_ = sample;
    rttvar_ = sample * 0.5;
    return;
  }
  const sim::Time err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
  rttvar_ = rttvar_ * 0.75 + err * 0.25;
  srtt_ = srtt_ * 0.875 + sample * 0.125;
}

void TxSession::flush_notifies(std::uint32_t ack) {
  while (!notifies_.empty() && seq_leq(notifies_.front().seq, ack)) {
    const TxNotify n = notifies_.front();
    notifies_.pop_front();
    if (completion_hook_) completion_hook_(n, BclErr::kOk);
  }
}

void TxSession::track(TxNotify n) {
  if (unreachable_) {
    // The teardown flush already ran; this entry raced it (the session
    // died between the final fragment's transmit and its registration).
    if (completion_hook_) completion_hook_(n, fail_err_);
    return;
  }
  notifies_.push_back(std::move(n));
}

void TxSession::poison(BclErr err) {
  if (unreachable_) return;
  unreachable_ = true;
  fail_err_ = err;
  rec(FlightKind::kPeerFailed, 0, 0,
      static_cast<std::uint64_t>(unacked_.size()));
  const auto freed = static_cast<std::int64_t>(unacked_.size());
  unacked_.clear();
  // Every e2e-tracked message still waiting on its cumulative ack surfaces
  // the error exactly once — never silently lost.
  while (!notifies_.empty()) {
    const TxNotify n = notifies_.front();
    notifies_.pop_front();
    if (completion_hook_) completion_hook_(n, err);
  }
  // Wake every sender parked on the window; they observe unreachable_ and
  // fail their sends instead of transmitting into the void.
  window_.release(freed + static_cast<std::int64_t>(window_.waiting()) + 1);
  // And every sender parked on the handshake gate.
  established_.open();
}

void TxSession::fail_peer() {
  if (unreachable_) return;
  poison(fail_verdict_ ? fail_verdict_() : BclErr::kPeerUnreachable);
  if (failure_hook_) failure_hook_();
}

}  // namespace bcl
