#include "bcl/reliable.hpp"

namespace bcl {

sim::Task<void> TxSession::send(hw::Packet p) {
  if (!window_.try_acquire()) {
    ++window_stalls_;  // go-back-N window full: the MCP tx path blocks here
    co_await window_.acquire();
  }
  p.seq = next_seq_++;
  if (unacked_.empty()) last_progress_ = eng_.now();
  unacked_.push_back(p);  // retransmit copy
  arm_timer();
  co_await nic_.transmit(std::move(p));
}

void TxSession::on_ack(std::uint32_t ack) {
  std::int64_t released = 0;
  while (!unacked_.empty() && unacked_.front().seq <= ack) {
    unacked_.pop_front();
    ++released;
  }
  if (released > 0) {
    last_progress_ = eng_.now();
    window_.release(released);
  }
}

void TxSession::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  eng_.spawn_daemon(timer());
}

sim::Task<void> TxSession::timer() {
  co_await eng_.sleep(rto_);
  timer_armed_ = false;
  if (unacked_.empty()) co_return;  // all acked; let the engine drain
  if (eng_.now() - last_progress_ >= rto_ && !retransmitting_) {
    ++timeouts_;
    retransmitting_ = true;
    // Go-back-N: resend the whole outstanding window in order.
    const std::size_t n = unacked_.size();
    for (std::size_t i = 0; i < n && i < unacked_.size(); ++i) {
      hw::Packet copy = unacked_[i];
      ++retransmissions_;
      co_await nic_.transmit(std::move(copy));
    }
    last_progress_ = eng_.now();
    retransmitting_ = false;
  }
  arm_timer();
}

}  // namespace bcl
