#include "bcl/reliable.hpp"

#include <algorithm>
#include <vector>

#include "sim/trace.hpp"

namespace bcl {

TxSession::TxSession(sim::Engine& eng, hw::Nic& nic, const CostConfig& cfg,
                     std::uint64_t seed)
    : eng_{eng},
      nic_{nic},
      cfg_{cfg},
      window_{eng, cfg.window},
      rng_{seed},
      next_seq_{cfg.first_seq},
      last_ack_{cfg.first_seq - 1} {}

sim::Task<BclErr> TxSession::send(hw::Packet p) {
  if (unreachable_) co_return BclErr::kPeerUnreachable;
  if (!window_.try_acquire()) {
    ++window_stalls_;  // go-back-N window full: the MCP tx path blocks here
    rec(FlightKind::kWindowStall, p.msg_id);
    co_await window_.acquire();
    // fail_peer() releases parked senders; they must not transmit.
    if (unreachable_) co_return BclErr::kPeerUnreachable;
  }
  p.seq = next_seq_++;
  rec(FlightKind::kSend, p.msg_id, p.seq);
  if (unacked_.empty()) last_progress_ = eng_.now();
  unacked_.push_back({p, eng_.now(), false});  // retransmit copy
  arm_timer();
  co_await nic_.transmit(std::move(p));
  co_return BclErr::kOk;
}

void TxSession::on_ack(std::uint32_t ack) {
  if (unreachable_) return;
  std::int64_t released = 0;
  bool have_sample = false;
  sim::Time sample = sim::Time::zero();
  while (!unacked_.empty() && seq_leq(unacked_.front().pkt.seq, ack)) {
    // Karn's rule: only packets that were never retransmitted produce RTT
    // samples (the newest released one is the tightest measurement).
    if (!unacked_.front().retransmitted) {
      sample = eng_.now() - unacked_.front().sent_at;
      have_sample = true;
    }
    unacked_.pop_front();
    ++released;
  }
  if (released > 0) {
    if (have_sample) note_rtt(sample);
    last_progress_ = eng_.now();
    last_ack_ = ack;
    dup_acks_ = 0;
    backoff_level_ = 0;
    consecutive_timeouts_ = 0;
    window_.release(released);
    rec(FlightKind::kAckRx, 0, ack, static_cast<std::uint64_t>(released));
  } else if (!unacked_.empty() && ack == last_ack_) {
    // Duplicate cumulative ack: the receiver is re-acking because packets
    // arrive out of order past a hole.  k of them and we resend the window
    // now instead of waiting out the RTO.
    if (cfg_.dupack_k > 0 && ++dup_acks_ >= cfg_.dupack_k &&
        !retransmitting_ && eng_.now() >= rnr_hold_until_) {
      dup_acks_ = 0;
      ++fast_retransmits_;
      rec(FlightKind::kFastRetransmit, 0, ack);
      eng_.spawn_daemon(retransmit_window());
    }
  }
  // else: stale ack from before last_ack_ (late duplicate on the wire).
}

void TxSession::on_rnr(std::uint32_t ack, sim::Time hold) {
  if (unreachable_) return;
  ++rnr_events_;
  rec(FlightKind::kRnr, 0, ack,
      static_cast<std::uint64_t>(hold.to_us() > 0 ? hold.to_us() : 0));
  // The NACK still carries a cumulative ack: release the prefix the
  // receiver did take.  No RTT sample — the reply timing reflects pool
  // pressure, not path delay (same spirit as Karn's rule).
  std::int64_t released = 0;
  while (!unacked_.empty() && seq_leq(unacked_.front().pkt.seq, ack)) {
    unacked_.pop_front();
    ++released;
  }
  if (released > 0) {
    last_ack_ = ack;
    window_.release(released);
  }
  // An RNR proves the peer is alive and responsive: the retry budget,
  // backoff ladder, and dup-ack count all restart.  A merely-slow receiver
  // can therefore never ripen into kPeerUnreachable.
  consecutive_timeouts_ = 0;
  backoff_level_ = 0;
  dup_acks_ = 0;
  last_progress_ = eng_.now();
  if (hold <= sim::Time::zero()) hold = cfg_.fc_rnr_backoff;
  rnr_hold_until_ = eng_.now() + hold;
  if (!rnr_wait_armed_ && !unacked_.empty()) {
    rnr_wait_armed_ = true;
    eng_.spawn_daemon(rnr_resume(hold));
  }
}

sim::Task<void> TxSession::rnr_resume(sim::Time hold) {
  co_await eng_.sleep(hold);
  rnr_wait_armed_ = false;
  if (!unacked_.empty() && !unreachable_) co_await retransmit_window();
}

void TxSession::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  eng_.spawn_daemon(timer());
}

sim::Task<void> TxSession::timer() {
  for (;;) {
    const sim::Time wait = effective_rto();
    co_await eng_.sleep(wait);
    if (unacked_.empty() || unreachable_) break;  // let the engine drain
    // Inside a receiver-not-ready hold the quiet is intentional: the
    // rnr_resume daemon owns the paced resend, and counting the silence
    // as timeouts would burn the retry budget against a live peer.
    if (eng_.now() < rnr_hold_until_) continue;
    if (eng_.now() - last_progress_ >= wait && !retransmitting_) {
      ++timeouts_;
      rec(FlightKind::kTimeout, 0, 0,
          static_cast<std::uint64_t>(backoff_level_));
      if (cfg_.max_retries > 0 &&
          ++consecutive_timeouts_ > cfg_.max_retries) {
        fail_peer();
        break;
      }
      co_await retransmit_window();
      if (backoff_level_ < cfg_.rto_backoff_cap) ++backoff_level_;
    }
  }
  timer_armed_ = false;
}

sim::Task<void> TxSession::retransmit_window() {
  if (retransmitting_ || unreachable_ || unacked_.empty()) co_return;
  retransmitting_ = true;
  // Snapshot before the first suspension point; mark everything outstanding
  // as retransmitted up front so acks racing the resend obey Karn's rule.
  std::vector<std::uint32_t> seqs;
  seqs.reserve(unacked_.size());
  for (auto& o : unacked_) {
    seqs.push_back(o.pkt.seq);
    o.retransmitted = true;
  }
  for (const std::uint32_t s : seqs) {
    if (unreachable_) break;
    const auto it =
        std::find_if(unacked_.begin(), unacked_.end(),
                     [s](const Outstanding& o) { return o.pkt.seq == s; });
    if (it == unacked_.end()) continue;  // acked while we were suspended
    hw::Packet copy = it->pkt;
    copy.retransmitted = true;  // per-link retransmit heat
    ++retransmissions_;
    rec(FlightKind::kRetransmit, copy.msg_id, s);
    if (trace_ != nullptr) {
      trace_->msg_retransmit(flow_key(nic_.node(), copy.msg_id));
    }
    co_await nic_.transmit(std::move(copy));
  }
  last_progress_ = eng_.now();
  retransmitting_ = false;
}

sim::Time TxSession::rto() const {
  if (!cfg_.adaptive_rto || !have_srtt_) return cfg_.rto;
  sim::Time r = srtt_ + rttvar_ * 4.0;
  if (r < cfg_.rto_min) r = cfg_.rto_min;
  if (r > cfg_.rto_max) r = cfg_.rto_max;
  return r;
}

sim::Time TxSession::effective_rto() {
  sim::Time r = rto();
  for (int i = 0; i < backoff_level_ && r < cfg_.rto_max; ++i) r = r * 2.0;
  if (r > cfg_.rto_max) r = cfg_.rto_max;
  if (cfg_.rto_backoff_jitter > 0.0) {
    r = r * (1.0 + cfg_.rto_backoff_jitter * rng_.uniform());
  }
  return r;
}

void TxSession::note_rtt(sim::Time sample) {
  ++rtt_samples_;
  if (!have_srtt_) {
    have_srtt_ = true;
    srtt_ = sample;
    rttvar_ = sample * 0.5;
    return;
  }
  const sim::Time err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
  rttvar_ = rttvar_ * 0.75 + err * 0.25;
  srtt_ = srtt_ * 0.875 + sample * 0.125;
}

void TxSession::fail_peer() {
  if (unreachable_) return;
  unreachable_ = true;
  rec(FlightKind::kPeerFailed, 0, 0,
      static_cast<std::uint64_t>(unacked_.size()));
  const auto freed = static_cast<std::int64_t>(unacked_.size());
  unacked_.clear();
  // Wake every sender parked on the window; they observe unreachable_ and
  // fail their sends instead of transmitting into the void.
  window_.release(freed + static_cast<std::int64_t>(window_.waiting()) + 1);
  if (failure_hook_) failure_hook_();
}

}  // namespace bcl
