// MCP: the Message Control Program running on the NIC's LANai processor.
//
// Send side: polls the request queue the kernel module fills via PIO,
// fragments messages at the MTU, gathers payload from pinned host pages by
// DMA, and transmits through a go-back-N session per destination node.
//
// Receive side: verifies CRC, enforces in-order delivery, demultiplexes to
// the destination port's channel (system pool slot / posted normal buffer /
// open RMA window), scatters payload into user memory by DMA, and DMAs a
// completion event into the user-space event queue — no host kernel, no
// interrupt (the defining property of the semi-user-level architecture).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bcl/cc/controller.hpp"
#include "bcl/config.hpp"
#include "bcl/flowctl.hpp"
#include "bcl/pathtable.hpp"
#include "bcl/port.hpp"
#include "bcl/recorder.hpp"
#include "bcl/reliable.hpp"
#include "bcl/types.hpp"
#include "hw/nic.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/queue.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace bcl {

namespace coll {
class CollectiveEngine;
}

// Slices a scatter/gather list to the physical range [off, off+len).
std::vector<hw::PhysSegment> slice_segments(
    const std::vector<hw::PhysSegment>& segs, std::uint64_t off,
    std::size_t len);

class Mcp {
 public:
  static constexpr std::uint16_t kProto = 1;

  Mcp(sim::Engine& eng, hw::Nic& nic, const CostConfig& cfg,
      sim::Trace* trace = nullptr, sim::MetricRegistry* metrics = nullptr);
  ~Mcp();

  // Port registry (NIC-resident port table).
  void register_port(Port* port);
  void unregister_port(std::uint32_t port_no);
  Port* find_port(std::uint32_t port_no);

  // The request queue the kernel module posts into.
  sim::Channel<SendDescriptor>& requests() { return requests_; }

  // The NIC-resident collective engine (barrier/bcast/reduce offload).
  coll::CollectiveEngine& coll() { return *coll_; }

  // Sender-side credit table (read by the kernel on the send trap and by
  // the library's credit-wait poll loop).
  FlowController& flow() { return *flow_; }

  // NIC-resident congestion controller: per-destination AIMD rate state
  // and the pacer every launch path consults.
  cc::CongestionController& cc() { return *cc_; }
  const cc::CongestionController& cc() const { return *cc_; }

  // Per-destination fabric-path health (multipath failover state).
  PathTable& path_table() { return *path_table_; }
  const PathTable& path_table() const { return *path_table_; }

  // Library-side doorbell: a system-channel pool slot was just released;
  // top up the ledgers for `port_no` and push a standalone credit update
  // to any sender that was starved (or accumulated a batch).
  void credit_doorbell(std::uint32_t port_no);
  // A stalled sender-side library asks the receiver for a fresh cumulative
  // grant (stand-in for reading the remote credit word; heals lost
  // updates).  Fire-and-forget.
  void fc_probe(PortId dst);

  // Engine-originated transmit: stamps a packet id and pushes the packet
  // through the per-destination go-back-N session.  Charges the engine's
  // lightweight per-packet cost (the full send path's descriptor fetch and
  // pin-table walk don't apply — group state is already in SRAM).  Always
  // run as a daemon from rx context (see the deadlock rule in INTERNALS).
  sim::Task<void> coll_send(hw::Packet p);

  // -- crash–restart recovery --------------------------------------------------
  // Fail-stop the MCP: halts the NIC (wire-level drop of all traffic both
  // ways) and discards the protocol SRAM state — every tx session is
  // poisoned with kPeerRestarted (in-flight and parked sends fail exactly
  // once through the event queue), queued request-ring descriptors are
  // failed the same way, collective groups and pending ops die, and queued
  // rx packets are dropped.  Host-side state (ports, channels, event
  // queues) survives: it lives in host memory, not SRAM.
  void crash();
  // Host-driven reboot (Driver::reset_nic, after the firmware reload
  // delay): clears the session/ledger tables for the new life, un-halts
  // the NIC under a bumped incarnation, and resumes service.  Sessions
  // created after a reboot re-establish with the SYN handshake.
  void reset();
  bool crashed() const { return crashed_; }
  std::uint32_t incarnation() const { return nic_.incarnation(); }

  TxSession& tx_session(hw::NodeId dst);
  // Lookup without creating: acks must never instantiate a session (a
  // stray or late ack for a peer we never sent to would otherwise grow
  // tx_sessions_ unboundedly).
  TxSession* find_tx_session(hw::NodeId dst);
  std::size_t tx_session_count() const { return tx_sessions_.size(); }

  struct Stats {
    std::uint64_t data_packets_in = 0;
    std::uint64_t crc_drops = 0;
    std::uint64_t seq_drops = 0;
    std::uint64_t no_port_drops = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t rma_reads_served = 0;
    std::uint64_t stray_acks = 0;      // acks with no matching tx session
    std::uint64_t peer_failures = 0;   // sessions declared unreachable
    // Flow control.
    std::uint64_t rnr_nacks_tx = 0;    // pool full: NACKed instead of dropped
    std::uint64_t rnr_nacks_rx = 0;
    std::uint64_t fc_updates_tx = 0;   // standalone credit-update packets
    std::uint64_t fc_updates_rx = 0;
    std::uint64_t fc_probes_tx = 0;
    std::uint64_t fc_probes_rx = 0;
    std::uint64_t fc_credits_granted = 0;  // cumulative limit advance
    // Congestion control.
    std::uint64_t cc_marks_rx = 0;    // ECN-marked packets accepted here
    std::uint64_t cc_echoes_tx = 0;   // echoes piggybacked on acks/grants
    // Crash–restart recovery.
    std::uint64_t restarts = 0;           // local MCP reboots completed
    std::uint64_t recovered_peers = 0;    // sessions re-established (SYN-ACK)
    std::uint64_t peer_restarts = 0;      // higher peer incarnations seen
    std::uint64_t stale_inc_drops = 0;    // packets fenced on incarnation
    std::uint64_t restart_notices_tx = 0; // stale-dst notify replies sent
    std::uint64_t syns_tx = 0;
    std::uint64_t syns_rx = 0;
    std::uint64_t probes_tx = 0;          // revival probes launched
    std::uint64_t probes_rx = 0;
    // Multipath failover.
    std::uint64_t path_probes_tx = 0;     // quarantined-path probes launched
    std::uint64_t path_probes_rx = 0;
  };
  const Stats& stats() const { return stats_; }
  // Diagnostic snapshot of the receiver-side ledgers:
  // (local port, sending node) -> (cumulative limit, cumulative delivered).
  struct RxCreditSnapshot {
    std::uint32_t port = 0;
    hw::NodeId src = 0;
    std::uint32_t limit = 0;
    std::uint32_t delivered = 0;
  };
  std::vector<RxCreditSnapshot> rx_credit_snapshot() const {
    std::vector<RxCreditSnapshot> out;
    for (const auto& [key, rc] : rx_credits_) {
      out.push_back({key.first, key.second, rc.limit, rc.delivered});
    }
    return out;
  }
  std::uint64_t retransmissions() const;
  std::uint64_t timeouts() const;
  std::uint64_t window_stalls() const;
  std::uint64_t fast_retransmits() const;
  std::size_t tx_in_flight() const;
  std::size_t unreachable_peers() const;

  // -- flight recorder / post-mortem -----------------------------------------
  // Fired when this NIC diagnoses a failure worth a post-mortem: a peer
  // declared unreachable (reason "peer-unreachable", peer >= 0) or a
  // collective watchdog expiry (reason "collective-timeout", peer -1).
  // `victim` names the operation that died.  The cluster installs a hook
  // that assembles a bcl::Postmortem from the fabric and session state.
  using DiagnosisHook = std::function<void(
      const std::string& reason, int peer, const std::string& victim)>;
  void set_diagnosis_hook(DiagnosisHook h) { diagnosis_hook_ = std::move(h); }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }
  // Collective watchdog expiry: record it and fire the diagnosis hook
  // before the group is torn down (called by the collective engine).
  void report_coll_timeout(std::uint16_t gid, std::uint64_t seq,
                           const char* what);
  // Go-back-N session state at a point in time (post-mortem ledger).
  struct SessionSnapshot {
    hw::NodeId peer = 0;
    double srtt_us = 0;
    double rto_us = 0;
    int backoff = 0;
    std::size_t in_flight = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t window_stalls = 0;
    bool unreachable = false;
    std::uint32_t incarnation = 0;       // local boot epoch at snapshot time
    std::uint32_t peer_incarnation = 0;  // newest epoch seen from this peer
  };
  std::vector<SessionSnapshot> session_snapshot() const;
  // Queue-occupancy high-water marks, observed at dequeue time.
  std::size_t request_ring_hwm() const { return req_ring_hwm_; }
  std::size_t rx_queue_hwm() const { return rx_queue_hwm_; }

 private:
  // Receiver-side credit ledger, one per (local port, sending node):
  // cumulative allowance vs cumulative deliveries into the pool.
  struct RxCredit {
    std::uint32_t limit = 0;
    std::uint32_t delivered = 0;
    bool update_queued = false;  // a standalone update daemon is in flight
  };
  using RxCreditKey = std::pair<std::uint32_t, hw::NodeId>;

  sim::Task<void> tx_pump();
  sim::Task<void> rx_pump();
  sim::Task<void> send_message_locked(SendDescriptor d);
  sim::Task<void> send_message(const SendDescriptor& d);
  // False means receiver-not-ready: the system pool had no slot and flow
  // control is on, so the caller must regress the rx session and NACK
  // instead of acking a silently discarded message.
  sim::Task<bool> handle_data(hw::Packet p);
  sim::Task<void> handle_rma_read(const hw::Packet& p);
  sim::Task<void> send_ack(hw::NodeId dst, std::uint32_t ack,
                           sim::Time echo = sim::Time::zero(),
                           std::uint8_t path = hw::kDefaultPath);
  sim::Task<void> send_rnr(hw::NodeId dst, std::uint32_t ack,
                           std::uint8_t path = hw::kDefaultPath);
  sim::Task<void> send_fc_update(std::uint32_t port_no, hw::NodeId dst);
  sim::Task<void> send_fc_probe(PortId dst);
  RxCredit& rx_credit(std::uint32_t port_no, hw::NodeId src);
  // Raise the ledger's limit toward the per-sender window (capped by the
  // slots free right now); returns the number of fresh credits granted.
  std::uint32_t fc_top_up(Port& port, RxCredit& rc);
  // Attach the current cumulative grant for p.dst_node to an outbound
  // packet (acks, data, NACKs) — the piggyback path of credit return.
  void attach_grant(hw::Packet& p);
  // An inbound packet may carry a grant for our sender side.
  void apply_grant(const hw::Packet& p);
  // ECN bookkeeping, called once per *accepted* data packet (retransmitted
  // duplicates are already filtered by the rx session, so a mark is counted
  // at most once per delivery): advances the source's echo window and
  // records whether this packet arrived marked.
  void note_ecn(const hw::Packet& p);
  // Piggyback the echo on an outbound ack/NACK/grant toward the source.
  // With cc_proportional the echo is QCN-style: at most once per
  // cc_echo_window, carrying ceil(levels * marked/accepted) — the
  // quantized fraction of the window's accepted packets that arrived
  // marked.  Without it, any pending mark flushes immediately at full
  // strength (DCQCN CNP semantics: "congestion", not "how much").
  void attach_cc_echo(hw::Packet& p);
  // An inbound ack/NACK/grant may carry an echo for our rate controller.
  void apply_cc_echo(const hw::Packet& p);
  sim::Task<void> deliver_recv_event(Port& port, RecvEvent ev);
  sim::Task<void> deliver_send_event(Port* port, SendEvent ev);
  RxSession& rx_session(hw::NodeId src);
  // Retry budget exhausted toward `dst`: fail the collective groups that
  // include it, post a kPeerUnreachable notification event (msg_id 0) to
  // every local port's send-event queue, and start the bounded revival
  // prober that can later rescind the verdict.
  sim::Task<void> announce_peer_failure(hw::NodeId dst);
  void register_session_metrics(hw::NodeId dst);

  // -- crash–restart internals -------------------------------------------------
  // Incarnation fence, applied to every inbound kProto packet before any
  // state is touched.  False means "fenced, drop it": the packet was
  // addressed to a previous boot of this NIC (stale dst — answered with a
  // rate-limited kProbeAck so the sender learns the new epoch) or carries
  // an epoch older than the newest seen from its source.  A *higher*
  // source epoch is the restart detection point: the dead session pair is
  // torn down before the packet proceeds.
  bool fence_incarnation(const hw::Packet& p);
  // The peer rebooted: poison+retire its tx session (kPeerRestarted), drop
  // its rx session / rx ledgers / echo window, reset the sender-side credit
  // ledgers, and mark the peer for a SYN handshake on the next session.
  void handle_peer_restart(hw::NodeId src);
  // Poison the session with `err` and move it to the graveyard (its timer
  // daemons may still be parked in a sleep and must wake on a live object).
  void teardown_session(hw::NodeId peer, BclErr err);
  // Stamp the outbound dst-incarnation belief for p.dst_node.
  void stamp_outbound(hw::Packet& p);
  std::uint32_t peer_inc(hw::NodeId dst) const;
  // Session-less recovery control packet (kSyn/kSynAck/kProbe/kProbeAck).
  // `path` pins the packet onto a specific fabric path (path probes ride
  // the path they test; replies ride the path the trigger arrived on);
  // kDefaultPath falls back to the destination's current table path.
  sim::Task<void> send_ctrl(hw::NodeId dst, SendOp op, std::uint32_t seq,
                            std::uint32_t dst_inc, std::uint64_t nonce = 0,
                            std::uint8_t path = hw::kDefaultPath);
  // Retries the SYN for `s` (the session it was spawned for — a replaced
  // session runs its own daemon) until establishment, teardown, or ladder
  // exhaustion, which draws the ordinary unreachable verdict.
  sim::Task<void> syn_daemon(hw::NodeId dst, TxSession* s);
  // Bounded low-rate keepalive toward an unreachable peer.
  sim::Task<void> revival_prober(hw::NodeId dst);
  void handle_syn(const hw::Packet& p);
  void handle_syn_ack(const hw::Packet& p);
  void handle_probe_ack(const hw::Packet& p);
  std::string comp() const;

  // -- multipath failover internals --------------------------------------------
  // Resolve the fabric path for an outbound packet toward dst: an explicit
  // hint (ack-follows-data: replies ride the path the trigger arrived on)
  // wins; otherwise the destination's current table path (kDefaultPath for
  // untracked destinations — the fabric picks its static route).
  std::uint8_t path_for(hw::NodeId dst, std::uint8_t hint) const;
  // One RTO strike against dst's current path.  Returns true when the
  // table rotated to a fresh path (the session resets its escalation and
  // retries eagerly on the new wire).
  bool path_strike(hw::NodeId dst);
  void spawn_path_prober(hw::NodeId dst, std::uint8_t path);
  // Bounded background prober for one quarantined (dst, path): sends a
  // kProbe with seq = path+1 pinned onto that path every
  // path_probe_interval, up to path_probe_max rounds.  An answered probe
  // (kProbeAck echoing the seq) requalifies the path via handle_probe_ack.
  sim::Task<void> path_prober(hw::NodeId dst, std::uint8_t path);

  sim::Engine& eng_;
  hw::Nic& nic_;
  const CostConfig& cfg_;
  sim::Trace* trace_;
  sim::MetricRegistry* metrics_ = nullptr;
  sim::Channel<SendDescriptor> requests_;
  sim::Mutex tx_mutex_;
  std::map<std::uint32_t, Port*> ports_;
  std::map<hw::NodeId, std::unique_ptr<TxSession>> tx_sessions_;
  std::map<hw::NodeId, RxSession> rx_sessions_;
  std::uint64_t next_packet_id_ = 1;
  std::unique_ptr<coll::CollectiveEngine> coll_;
  std::unique_ptr<FlowController> flow_;
  std::unique_ptr<cc::CongestionController> cc_;
  std::unique_ptr<PathTable> path_table_;
  // Per-source echo accumulation window: accepted packets and marks seen
  // since the window opened (first accepted packet after the previous
  // flush — idle gaps between bursts must not dilute the mark fraction).
  struct EcnEchoWindow {
    std::uint32_t accepted = 0;
    std::uint32_t marked = 0;
    sim::Time window_start = sim::Time::zero();
  };
  std::map<hw::NodeId, EcnEchoWindow> ecn_echo_;
  std::map<RxCreditKey, RxCredit> rx_credits_;
  // Per-port round-robin cursor for the doorbell's ledger scan (fairness
  // across senders competing for the same pool's freed slots).
  std::map<std::uint32_t, std::size_t> fc_rr_next_;
  // -- crash–restart state -----------------------------------------------------
  bool crashed_ = false;
  // Newest boot epoch seen from (and believed current for) each peer:
  // compared against inbound src_incarnation, stamped into outbound
  // dst_incarnation.
  std::map<hw::NodeId, std::uint32_t> peer_incarnation_;
  // Torn-down sessions are parked here, never destroyed mid-run: their
  // timer/rnr daemons may be asleep holding `this` and must wake on a live
  // object (they observe the poisoned flag and exit).
  std::vector<std::unique_ptr<TxSession>> session_graveyard_;
  // Peers whose per-session gauges are already registered (the registry
  // binds a callback once per name; replacement sessions are reached
  // through find_tx_session lookups instead of rebinding).
  std::set<hw::NodeId> session_metrics_registered_;
  // Peers whose next tx session must open with a SYN handshake (their
  // restart was detected, or a revival probe was answered).
  std::set<hw::NodeId> needs_syn_;
  std::set<hw::NodeId> probing_;  // revival prober active toward these
  // (dst, path) pairs with an active quarantined-path prober daemon.
  std::set<std::pair<hw::NodeId, std::uint8_t>> path_probing_;
  // Rate limiter for stale-dst restart notices, per source.
  std::map<hw::NodeId, sim::Time> last_restart_notice_;
  // Receiver-side handshake idempotency: the (src incarnation, nonce) of
  // the last SYN applied per peer, so a late retried SYN can re-draw its
  // SYN-ACK without resetting an rx session that already took data.
  std::map<hw::NodeId, std::pair<std::uint32_t, std::uint64_t>> syn_seen_;

  Stats stats_;
  FlightRecorder recorder_;
  DiagnosisHook diagnosis_hook_;
  std::size_t req_ring_hwm_ = 0;
  std::size_t rx_queue_hwm_ = 0;
  // Hot-path metric handles (null without a registry).
  sim::Counter* m_dma_tx_bytes_ = nullptr;
  sim::Counter* m_dma_rx_bytes_ = nullptr;
  sim::Counter* m_tx_descriptors_ = nullptr;
};

}  // namespace bcl
