#include "bcl/intranode.hpp"

#include <algorithm>

#include "bcl/mcp.hpp"  // slice_segments

namespace bcl {

IntraNode::IntraNode(sim::Engine& eng, osk::Kernel& kernel,
                     const CostConfig& cfg, sim::MetricRegistry* metrics)
    : eng_{eng}, kernel_{kernel}, cfg_{cfg} {
  if (metrics != nullptr) {
    const std::string prefix =
        "node" + std::to_string(kernel_.node().id()) + ".shm.";
    metrics->counter(prefix + "messages", [this] { return stats_.messages; });
    metrics->counter(prefix + "chunks", [this] { return stats_.chunks; });
    metrics->counter(prefix + "sys_drops", [this] { return stats_.sys_drops; });
    metrics->counter(prefix + "not_posted_drops",
                     [this] { return stats_.not_posted_drops; });
    metrics->counter(prefix + "rma_errors",
                     [this] { return stats_.rma_errors; });
    metrics->gauge(prefix + "pipes", [this] {
      return static_cast<double>(pipes_.size());
    });
  }
}

void IntraNode::register_port(Port* port) {
  ports_[port->id().port] = port;
}

void IntraNode::unregister_port(std::uint32_t port_no) {
  ports_.erase(port_no);
}

sim::Time IntraNode::copy_cost(std::size_t len) const {
  return cfg_.shm_copy_setup + sim::Time::bytes_at(len, cfg_.shm_copy_bw);
}

IntraNode::Pipe& IntraNode::pipe_for(std::uint32_t src_port,
                                     std::uint32_t dst_port) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src_port) << 32) | dst_port;
  auto& p = pipes_[key];
  if (!p) {
    p = std::make_unique<Pipe>();
    const int slots = cfg_.intra_pipeline ? cfg_.intra_slots : 1;
    p->seg = kernel_.shm().create(static_cast<std::size_t>(slots) *
                                  cfg_.intra_chunk);
    p->free_slots = std::make_unique<sim::Channel<int>>(eng_);
    p->full_slots = std::make_unique<sim::Channel<Chunk>>(eng_);
    for (int i = 0; i < slots; ++i) (void)p->free_slots->try_send(i);
    eng_.spawn_daemon(receiver(*p));
  }
  return *p;
}

sim::Task<void> IntraNode::copy_in(osk::Process& proc, hw::PhysAddr dst,
                                   osk::VirtAddr src_vaddr, std::size_t len) {
  co_await proc.cpu().busy(copy_cost(len));
  auto& mem = kernel_.node().memory();
  std::uint64_t off = 0;
  if (len > 0) {
    for (const auto& seg : proc.translate(src_vaddr, len)) {
      mem.write(dst + off, mem.view(seg.addr, seg.len));
      off += seg.len;
    }
  }
}

sim::Task<Result<std::uint64_t>> IntraNode::send(
    Port& src_port, PortId dst, ChannelRef ch, osk::VirtAddr vaddr,
    std::size_t len, SendOp op, std::uint64_t rma_offset) {
  // User-level sanity check (no kernel on this path; SHM confines damage).
  if (ch.kind == ChanKind::kSystem && len > cfg_.sys_slot_bytes) {
    co_return Result<std::uint64_t>{0, BclErr::kTooBig};
  }
  auto& proc = src_port.process();
  if (len > 0 && !proc.mapped(vaddr, len)) {
    co_return Result<std::uint64_t>{0, BclErr::kBadBuffer};
  }
  const std::uint64_t msg_id = next_msg_id_++;
  Pipe& pipe = pipe_for(src_port.id().port, dst.port);
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (len + cfg_.intra_chunk - 1) /
                                     cfg_.intra_chunk));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * cfg_.intra_chunk;
    const std::size_t clen = static_cast<std::size_t>(
        std::min<std::uint64_t>(cfg_.intra_chunk, len - off));
    const int slot = co_await pipe.free_slots->recv();
    co_await copy_in(proc,
                     pipe.seg.base +
                         static_cast<std::uint64_t>(slot) * cfg_.intra_chunk,
                     vaddr + off, clen);
    co_await proc.cpu().busy(cfg_.intra_sync);  // publish the slot flag
    ++stats_.chunks;
    co_await pipe.full_slots->send(Chunk{msg_id, src_port.id().port, dst.port,
                                         ch, op, rma_offset + off, i, count,
                                         len, slot, clen});
  }
  ++stats_.messages;
  ++src_port.messages_sent;
  // Local completion event (sender-side bookkeeping, no NIC involved).
  (void)src_port.send_events().try_send(SendEvent{msg_id, dst, true});
  co_return Result<std::uint64_t>{msg_id, BclErr::kOk};
}

sim::Task<void> IntraNode::receiver(Pipe& pipe) {
  auto& mem = kernel_.node().memory();
  for (;;) {
    Chunk c = co_await pipe.full_slots->recv();
    const hw::PhysAddr src =
        pipe.seg.base + static_cast<std::uint64_t>(c.slot) * cfg_.intra_chunk;
    Port* port = nullptr;
    if (const auto it = ports_.find(c.dst_port); it != ports_.end()) {
      port = it->second;
    }
    bool consumed = false;
    if (port != nullptr) {
      auto& rproc = port->process();
      switch (c.channel.kind) {
        case ChanKind::kSystem: {
          auto& sys = port->system();
          if (c.index == 0) {
            pipe.dropping = false;
            if (!sys.configured() || c.msg_bytes > sys.slot_bytes ||
                sys.free_slots.empty()) {
              pipe.dropping = true;
              ++stats_.sys_drops;
              ++port->sys_drops;
            } else {
              pipe.sys_slot = sys.free_slots.front();
              sys.free_slots.pop_front();
            }
          }
          if (!pipe.dropping) {
            co_await rproc.cpu().busy(copy_cost(c.len) + cfg_.intra_sync);
            if (c.len > 0) {
              auto segs = slice_segments(
                  sys.slots[static_cast<std::size_t>(pipe.sys_slot)],
                  c.offset, c.len);
              std::uint64_t soff = 0;
              for (const auto& seg : segs) {
                mem.write(seg.addr, mem.view(src + soff, seg.len));
                soff += seg.len;
              }
            }
            consumed = true;
            if (c.index + 1 == c.count) {
              ++port->messages_received;
              co_await port->recv_events().send(
                  RecvEvent{c.msg_id, PortId{kernel_.node().id(), c.src_port},
                            c.channel, static_cast<std::size_t>(c.msg_bytes),
                            pipe.sys_slot});
            }
          }
          break;
        }
        case ChanKind::kNormal: {
          if (c.channel.index >= port->normal_count() ||
              !port->normal(c.channel.index).posted ||
              c.offset + c.len > port->normal(c.channel.index).buf.len) {
            ++stats_.not_posted_drops;
            ++port->not_posted_drops;
            break;
          }
          auto& st = port->normal(c.channel.index);
          co_await rproc.cpu().busy(copy_cost(c.len) + cfg_.intra_sync);
          if (c.len > 0) {
            auto segs = slice_segments(st.segs, c.offset, c.len);
            std::uint64_t soff = 0;
            for (const auto& seg : segs) {
              mem.write(seg.addr, mem.view(src + soff, seg.len));
              soff += seg.len;
            }
          }
          consumed = true;
          if (c.index + 1 == c.count) {
            st.posted = false;
            ++port->messages_received;
            co_await port->recv_events().send(
                RecvEvent{c.msg_id, PortId{kernel_.node().id(), c.src_port},
                          c.channel, static_cast<std::size_t>(c.msg_bytes),
                          -1});
          }
          break;
        }
        case ChanKind::kOpen: {
          if (c.channel.index >= port->open_count() ||
              !port->open(c.channel.index).bound ||
              c.offset + c.len > port->open(c.channel.index).buf.len) {
            ++stats_.rma_errors;
            ++port->rma_errors;
            break;
          }
          auto& st = port->open(c.channel.index);
          co_await rproc.cpu().busy(copy_cost(c.len) + cfg_.intra_sync);
          if (c.len > 0) {
            auto segs = slice_segments(st.segs, c.offset, c.len);
            std::uint64_t soff = 0;
            for (const auto& seg : segs) {
              mem.write(seg.addr, mem.view(src + soff, seg.len));
              soff += seg.len;
            }
          }
          consumed = true;
          break;
        }
      }
    }
    (void)consumed;
    co_await pipe.free_slots->send(c.slot);
  }
}

sim::Task<Result<std::uint64_t>> IntraNode::rma_read(
    Port& src_port, PortId dst, std::uint16_t dst_channel,
    std::uint64_t offset, std::uint16_t reply_channel,
    const osk::UserBuffer& into, std::size_t len) {
  auto it = ports_.find(dst.port);
  if (it == ports_.end()) {
    co_return Result<std::uint64_t>{0, BclErr::kBadTarget};
  }
  Port& target = *it->second;
  if (dst_channel >= target.open_count() || !target.open(dst_channel).bound ||
      offset + len > target.open(dst_channel).buf.len) {
    ++stats_.rma_errors;
    co_return Result<std::uint64_t>{0, BclErr::kNotBound};
  }
  auto& proc = src_port.process();
  if (!proc.mapped(into.vaddr, std::max<std::size_t>(len, 1))) {
    co_return Result<std::uint64_t>{0, BclErr::kBadBuffer};
  }
  const std::uint64_t msg_id = next_msg_id_++;
  // Direct copy window -> local buffer on the caller's CPU.
  co_await proc.cpu().busy(copy_cost(len));
  if (len > 0) {
    auto& mem = kernel_.node().memory();
    auto src_segs = slice_segments(target.open(dst_channel).segs, offset, len);
    std::vector<std::byte> tmp;
    tmp.reserve(len);
    for (const auto& seg : src_segs) {
      auto v = mem.view(seg.addr, seg.len);
      tmp.insert(tmp.end(), v.begin(), v.end());
    }
    proc.poke(into, 0, tmp);
  }
  co_await src_port.recv_events().send(
      RecvEvent{msg_id, dst, ChannelRef{ChanKind::kNormal, reply_channel},
                len, -1});
  co_return Result<std::uint64_t>{msg_id, BclErr::kOk};
}

}  // namespace bcl
