// Per-destination fabric-path health ledger (MCP SRAM state).
//
// The two-level Myrinet fabric offers one route per spine between
// cross-leaf pairs; the PathTable remembers, per destination, which of
// those paths the session currently rides and how each path has behaved.
// Health is judged ONLY by consecutive RTO expiries ("strikes") fed in by
// the go-back-N timer — ECN marks and congestion-inflated RTTs never touch
// this table, so congestion can slow a path down but can never fail it
// over (the adaptive RTO and the cc drain allowance absorb congestion;
// see docs/INTERNALS.md, "Fabric fault tolerance").
//
// Lifecycle per path: healthy -> (failover_retries strikes while current)
// -> quarantined -> (answered path probe) -> healthy.  When every path to
// a destination is quarantined the destination is "partitioned": the
// session keeps riding its last path, the escalation resets stop, and the
// eventual retry-budget death reports BclErr::kPartitioned instead of
// kPeerUnreachable.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hw/packet.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace bcl {

class PathTable {
 public:
  struct PathState {
    std::uint8_t id = 0;
    int strikes = 0;                  // consecutive strikes while current
    std::uint64_t total_strikes = 0;  // lifetime, for the postmortem
    bool quarantined = false;
    sim::Time last_good = sim::Time::zero();
    sim::Time quarantined_at = sim::Time::zero();
  };

  struct DestSnapshot {
    hw::NodeId dst = 0;
    std::uint8_t current = hw::kDefaultPath;
    bool partitioned = false;
    std::vector<PathState> paths;
  };

  // What one strike did to the destination's routing.
  enum class StrikeResult {
    kNoChange,     // below the failover threshold; stay on the path
    kFailedOver,   // current path quarantined, rotated to a healthy one
    kPartitioned,  // current path struck out and no healthy path remains
  };

  PathTable(sim::Engine& eng, int failover_retries)
      : eng_{eng}, failover_retries_{failover_retries} {}

  // Starts tracking dst across `route_count` paths (no-op when already
  // tracked or when route_count <= 1 — single-path destinations stay on
  // the fabric's default route forever).  The initial current path is
  // dst % route_count, which reproduces MyrinetFabric::spine_for, so an
  // untracked and a freshly tracked destination ride the same wire.
  void init(hw::NodeId dst, int route_count);

  bool tracked(hw::NodeId dst) const { return dests_.count(dst) != 0; }

  // Path the next packet toward dst should ride (kDefaultPath when
  // untracked: let the fabric pick).
  std::uint8_t current(hw::NodeId dst) const;

  // Forward progress on dst's current path: clear its strike count and
  // refresh last_good.  Called on every ack advance and RNR (the peer
  // answered — the wire works, whatever the congestion state).
  void note_good(hw::NodeId dst);

  // One RTO expiry on dst's current path.  At failover_retries strikes the
  // path is quarantined and the current pointer rotates to the next
  // healthy path (round-robin from the struck path).
  StrikeResult strike(hw::NodeId dst);

  // An answered probe on a quarantined path: requalify it.  Returns true
  // if the path was actually quarantined (callers log kPathRestore on
  // that).  Clears the partitioned verdict, and if the destination's
  // current path is itself quarantined, moves current to the healed path.
  bool restore(hw::NodeId dst, std::uint8_t path);

  bool partitioned(hw::NodeId dst) const;

  bool is_quarantined(hw::NodeId dst, std::uint8_t path) const;

  // Every (dst, path) currently quarantined — the probe schedule.
  std::vector<std::pair<hw::NodeId, std::uint8_t>> quarantined_paths() const;

  std::vector<DestSnapshot> snapshot() const;

  // MCP fail-stop: SRAM contents are gone.
  void reset() {
    dests_.clear();
    failovers_ = restores_ = partitions_ = 0;
  }

  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t restores() const { return restores_; }
  std::uint64_t partitions() const { return partitions_; }
  std::uint64_t quarantined_count() const;

 private:
  struct Dest {
    std::uint8_t current = 0;
    bool partitioned = false;
    std::vector<PathState> paths;
  };

  sim::Engine& eng_;
  int failover_retries_;
  std::map<hw::NodeId, Dest> dests_;
  std::uint64_t failovers_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t partitions_ = 0;
};

}  // namespace bcl
