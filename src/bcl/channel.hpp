// Per-channel receive-side state.  Logically this state lives partly in NIC
// SRAM (so the MCP can match incoming packets without host help) and partly
// in pinned user memory (the buffers themselves).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/memory.hpp"
#include "osk/process.hpp"

namespace bcl {

// System channel: a FIFO pool of fixed-size slots, filled by the MCP in
// arrival order; the incoming message is discarded when no slot is free.
struct SystemChannelState {
  std::size_t slot_bytes = 0;
  osk::UserBuffer pool{};                           // backing user memory
  std::vector<std::vector<hw::PhysSegment>> slots;  // per-slot phys layout
  std::deque<int> free_slots;                       // NIC-visible free list

  bool configured() const { return slot_bytes != 0; }
};

// Normal channel: rendezvous semantics; exactly one posted buffer at a time.
struct NormalChannelState {
  bool posted = false;
  osk::UserBuffer buf{};
  std::vector<hw::PhysSegment> segs;  // pinned at post time
};

// Open channel: an RMA window other processes may read/write.
struct OpenChannelState {
  bool bound = false;
  osk::UserBuffer buf{};
  std::vector<hw::PhysSegment> segs;  // pinned at bind time

  // Physical sub-range [off, off+len) of the window, for RMA access.
  std::vector<hw::PhysSegment> slice(std::uint64_t off, std::size_t len) const;
};

}  // namespace bcl
