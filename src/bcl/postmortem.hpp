// Post-mortem diagnosis: when a NIC declares a peer unreachable or a
// collective watchdog expires, the cluster assembles a structured dump of
// everything relevant to "why did this die" — the congestion-ranked link
// table from the fabric, the links adjacent to the victim pair (the usual
// suspects), every go-back-N session ledger, both credit tables, and the
// flight-recorder timeline that preserves the retransmit storm leading up
// to the failure.  to_json() renders the machine-readable artifact the
// benches write on abort and CI uploads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bcl/cc/controller.hpp"
#include "bcl/flowctl.hpp"
#include "bcl/mcp.hpp"
#include "bcl/recorder.hpp"
#include "hw/link.hpp"

namespace bcl {

class BclCluster;

struct Postmortem {
  std::string reason;       // "peer-unreachable" | "collective-timeout"
  double time_us = 0;       // simulated time of the diagnosis
  hw::NodeId node = 0;      // the NIC that diagnosed the failure
  int peer = -1;            // unreachable peer (-1: not peer-specific)
  std::string victim;       // the operation that died, human-readable

  // Fabric-wide congestion table, hottest links first (ranked by
  // retransmit+drop traffic, then ECN marks, then queueing+blocking time).
  std::vector<hw::Fabric::LinkStats> top_links;
  // Links adjacent to the diagnosing node and the failed peer.
  std::vector<std::string> suspect_links;

  std::vector<Mcp::SessionSnapshot> sessions;

  // Per-destination multipath health from the diagnosing node: current
  // path, partition verdict, and the per-path strike history.  Empty on
  // single-switch fabrics (no alternative paths to track).
  std::vector<PathTable::DestSnapshot> path_table;

  // Per-destination rate-controller state from the diagnosing node, each
  // with a coarse diagnosis: "storming" (retransmit traffic while the rate
  // still sits at line — the echoes never reached this sender, so it keeps
  // blasting into the congestion), "throttled-recovering" (the echoes
  // landed: the rate was cut and additive increase is climbing back), or
  // "clean" (no throttling in force, no uncontrolled retransmit pressure).
  struct CcRate {
    cc::RateSnapshot rate;
    std::string state;
  };
  std::vector<CcRate> cc_rates;
  std::vector<FlowController::DstSnapshot> send_credits;
  std::vector<Mcp::RxCreditSnapshot> recv_credits;

  // Flight-recorder snapshot, oldest first.
  std::vector<FlightEvent> timeline;
  // The retransmit-episode envelope within the timeline (first to last
  // retransmit/timeout/fast-retransmit event and how many there were).
  struct RetxStorm {
    double start_us = 0;
    double end_us = 0;
    std::uint64_t events = 0;
  };
  RetxStorm storm;

  std::string to_json() const;
};

// Assembles a Postmortem from the cluster's fabric and the diagnosing
// node's MCP state.  `top_n` bounds the congestion table.
Postmortem build_postmortem(BclCluster& cluster, hw::NodeId node,
                            const std::string& reason, int peer,
                            const std::string& victim, std::size_t top_n);

// JSON array of dumps plus the count suppressed once the per-cluster cap
// was reached (a 64-node failure cascade triggers on many NICs at once).
std::string postmortems_json(const std::vector<Postmortem>& dumps,
                             std::uint64_t dropped);

}  // namespace bcl
