// The BCL user-level library: the public API application code links
// against.  The APIs "are only the covers of some ioctl() syscall
// subcommands provided by the BCL kernel module" on the send side
// (section 4.1), while completion polling runs entirely in user space.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bcl/driver.hpp"
#include "bcl/intranode.hpp"
#include "bcl/port.hpp"
#include "sim/trace.hpp"

namespace bcl {

class Endpoint {
 public:
  Endpoint(sim::Engine& eng, const CostConfig& cfg, Driver& driver,
           Mcp& mcp, IntraNode& intra, osk::Process& proc,
           std::unique_ptr<Port> port, sim::Trace* trace,
           sim::MetricRegistry* metrics = nullptr);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  PortId id() const { return port_->id(); }
  Port& port() { return *port_; }
  osk::Process& process() { return proc_; }
  Driver& driver() { return driver_; }
  Mcp& mcp() { return mcp_; }
  const CostConfig& cost() const { return cfg_; }

  // -- send ----------------------------------------------------------------------
  // Sends buf[off, off+len) to (dst, channel).  Same-node destinations take
  // the shared-memory path automatically.  Out of send credits toward dst,
  // the call blocks (polling the user-mapped credit word, no traps) until
  // credits return — or until cfg.fc_send_deadline if that is nonzero, in
  // which case it returns kWouldBlock.
  //
  // Crash–restart semantics: if either end's MCP fail-stops while the
  // message is in flight, the send completes exactly once with
  // kPeerRestarted (through wait_send) — never silently lost, never
  // duplicated across incarnations.  Unlike kPeerUnreachable, the
  // condition is transient: once the peer reboots and the sessions
  // re-establish (automatic, incarnation-fenced), retrying the same send
  // is expected to succeed.
  sim::Task<Result<std::uint64_t>> send(PortId dst, ChannelRef ch,
                                        const osk::UserBuffer& buf,
                                        std::size_t len, std::size_t off = 0);
  // Same, with an explicit per-call credit-wait deadline (zero = forever).
  sim::Task<Result<std::uint64_t>> send_deadline(PortId dst, ChannelRef ch,
                                                 const osk::UserBuffer& buf,
                                                 std::size_t len,
                                                 sim::Time deadline,
                                                 std::size_t off = 0);
  // Nonblocking: kWouldBlock when no credits are available right now,
  // kNoResources when the request ring is full.  Never parks the caller.
  sim::Task<Result<std::uint64_t>> try_send(PortId dst, ChannelRef ch,
                                            const osk::UserBuffer& buf,
                                            std::size_t len,
                                            std::size_t off = 0);
  // Convenience: system channel.
  sim::Task<Result<std::uint64_t>> send_system(PortId dst,
                                               const osk::UserBuffer& buf,
                                               std::size_t len) {
    return send(dst, ChannelRef{ChanKind::kSystem, 0}, buf, len);
  }

  // Blocks (polling the send event queue) until a send completes.  A
  // completion's `err` is kOk, kPeerUnreachable (retry budget spent — the
  // path is declared dead), or kPeerRestarted (an MCP fail-stopped mid
  // flight — transient, retry after re-establishment).
  sim::Task<SendEvent> wait_send();

  // -- receive -------------------------------------------------------------------
  // Posts a buffer on a normal channel (required before the matching send).
  sim::Task<BclErr> post_recv(std::uint16_t channel,
                              const osk::UserBuffer& buf);
  // Blocks (polling the receive event queue) until any message arrives.
  sim::Task<RecvEvent> wait_recv();
  // One non-blocking poll of the receive event queue.
  sim::Task<std::optional<RecvEvent>> try_recv();
  // Copies a system-channel message out of its pool slot and frees the slot.
  sim::Task<std::vector<std::byte>> copy_out_system(const RecvEvent& ev);

  // -- RMA (open channels) ----------------------------------------------------------
  sim::Task<BclErr> bind_open(std::uint16_t channel,
                              const osk::UserBuffer& buf);
  sim::Task<Result<std::uint64_t>> rma_write(PortId dst,
                                             std::uint16_t dst_channel,
                                             std::uint64_t dst_offset,
                                             const osk::UserBuffer& src,
                                             std::size_t len);
  // Reads len bytes from the target window into `into`; completion arrives
  // as a receive event on `reply_channel` (post_recv(into) is done here).
  sim::Task<Result<std::uint64_t>> rma_read(PortId dst,
                                            std::uint16_t dst_channel,
                                            std::uint64_t offset,
                                            std::uint16_t reply_channel,
                                            const osk::UserBuffer& into,
                                            std::size_t len);

 private:
  bool local(PortId dst) const { return dst.node == port_->id().node; }
  std::string comp() const;
  sim::Task<Result<std::uint64_t>> send_impl(PortId dst, ChannelRef ch,
                                             const osk::UserBuffer& buf,
                                             std::size_t len, std::size_t off,
                                             sim::Time deadline,
                                             bool nonblock);

  sim::Engine& eng_;
  const CostConfig& cfg_;
  Driver& driver_;
  Mcp& mcp_;
  IntraNode& intra_;
  osk::Process& proc_;
  std::unique_ptr<Port> port_;
  sim::Trace* trace_;
  // Library-level metric handles (null without a registry).
  sim::Counter* m_sends_ = nullptr;
  sim::Counter* m_recvs_ = nullptr;
  sim::Counter* m_recv_polls_ = nullptr;
  sim::Counter* m_recv_bytes_ = nullptr;
};

}  // namespace bcl
