#include "bcl/pathtable.hpp"

namespace bcl {

void PathTable::init(hw::NodeId dst, int route_count) {
  if (route_count <= 1 || dests_.count(dst) != 0) return;
  Dest d;
  d.current = static_cast<std::uint8_t>(
      dst % static_cast<hw::NodeId>(route_count));
  d.paths.resize(static_cast<std::size_t>(route_count));
  for (int i = 0; i < route_count; ++i) {
    d.paths[static_cast<std::size_t>(i)].id = static_cast<std::uint8_t>(i);
  }
  dests_.emplace(dst, std::move(d));
}

std::uint8_t PathTable::current(hw::NodeId dst) const {
  const auto it = dests_.find(dst);
  return it == dests_.end() ? hw::kDefaultPath : it->second.current;
}

void PathTable::note_good(hw::NodeId dst) {
  const auto it = dests_.find(dst);
  if (it == dests_.end()) return;
  PathState& p = it->second.paths[it->second.current];
  p.strikes = 0;
  p.last_good = eng_.now();
}

PathTable::StrikeResult PathTable::strike(hw::NodeId dst) {
  const auto it = dests_.find(dst);
  if (it == dests_.end()) return StrikeResult::kNoChange;
  Dest& d = it->second;
  if (d.partitioned) return StrikeResult::kNoChange;
  PathState& cur = d.paths[d.current];
  ++cur.total_strikes;
  if (++cur.strikes < failover_retries_) return StrikeResult::kNoChange;
  // The current path struck out: quarantine it and rotate round-robin to
  // the next healthy path.
  cur.quarantined = true;
  cur.quarantined_at = eng_.now();
  const std::size_t n = d.paths.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t cand = (d.current + i) % n;
    if (!d.paths[cand].quarantined) {
      d.current = static_cast<std::uint8_t>(cand);
      ++failovers_;
      return StrikeResult::kFailedOver;
    }
  }
  d.partitioned = true;
  ++partitions_;
  return StrikeResult::kPartitioned;
}

bool PathTable::restore(hw::NodeId dst, std::uint8_t path) {
  const auto it = dests_.find(dst);
  if (it == dests_.end()) return false;
  Dest& d = it->second;
  if (path >= d.paths.size()) return false;
  PathState& p = d.paths[path];
  if (!p.quarantined) return false;
  p.quarantined = false;
  p.strikes = 0;
  p.last_good = eng_.now();
  d.partitioned = false;
  if (d.paths[d.current].quarantined) d.current = path;
  ++restores_;
  return true;
}

bool PathTable::partitioned(hw::NodeId dst) const {
  const auto it = dests_.find(dst);
  return it != dests_.end() && it->second.partitioned;
}

bool PathTable::is_quarantined(hw::NodeId dst, std::uint8_t path) const {
  const auto it = dests_.find(dst);
  if (it == dests_.end() || path >= it->second.paths.size()) return false;
  return it->second.paths[path].quarantined;
}

std::vector<std::pair<hw::NodeId, std::uint8_t>> PathTable::quarantined_paths()
    const {
  std::vector<std::pair<hw::NodeId, std::uint8_t>> out;
  for (const auto& [dst, d] : dests_) {
    for (const PathState& p : d.paths) {
      if (p.quarantined) out.emplace_back(dst, p.id);
    }
  }
  return out;
}

std::uint64_t PathTable::quarantined_count() const {
  std::uint64_t n = 0;
  for (const auto& [dst, d] : dests_) {
    for (const PathState& p : d.paths) n += p.quarantined ? 1 : 0;
  }
  return n;
}

std::vector<PathTable::DestSnapshot> PathTable::snapshot() const {
  std::vector<DestSnapshot> out;
  out.reserve(dests_.size());
  for (const auto& [dst, d] : dests_) {
    DestSnapshot s;
    s.dst = dst;
    s.current = d.current;
    s.partitioned = d.partitioned;
    s.paths = d.paths;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace bcl
