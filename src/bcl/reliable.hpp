// Go-back-N reliability sessions, one per ordered node pair, run by the MCP
// on the NIC ("BCL performs data checking and guarantees reliable
// transmission in the on-card control program", section 5.1).
//
// TxSession: sliding window, cumulative acks, timeout retransmission.
// RxSession: in-order acceptance; out-of-order and corrupted packets drop.
#pragma once

#include <cstdint>
#include <deque>

#include "hw/nic.hpp"
#include "hw/packet.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace bcl {

class TxSession {
 public:
  TxSession(sim::Engine& eng, hw::Nic& nic, int window, sim::Time rto)
      : eng_{eng}, nic_{nic}, rto_{rto}, window_{eng, window} {}

  // Stamps the next sequence number, records a retransmit copy, and
  // transmits.  Blocks while the window is full.
  sim::Task<void> send(hw::Packet p);

  // Cumulative acknowledgement: releases everything with seq <= ack.
  void on_ack(std::uint32_t ack);

  std::size_t in_flight() const { return unacked_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t window_stalls() const { return window_stalls_; }

 private:
  void arm_timer();
  sim::Task<void> timer();

  sim::Engine& eng_;
  hw::Nic& nic_;
  sim::Time rto_;
  sim::Semaphore window_;
  std::deque<hw::Packet> unacked_;  // retransmit copies, seq order
  std::uint32_t next_seq_ = 1;
  sim::Time last_progress_ = sim::Time::zero();
  bool timer_armed_ = false;
  bool retransmitting_ = false;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t window_stalls_ = 0;
};

class RxSession {
 public:
  // True if the packet is the next expected one (accept it); false means
  // drop (duplicate or out of order after a loss).
  bool accept(std::uint32_t seq) {
    if (seq != expected_) return false;
    ++expected_;
    return true;
  }
  // Highest in-order sequence received (cumulative ack value).
  std::uint32_t ack_value() const { return expected_ - 1; }

 private:
  std::uint32_t expected_ = 1;
};

}  // namespace bcl
