// Go-back-N reliability sessions, one per ordered node pair, run by the MCP
// on the NIC ("BCL performs data checking and guarantees reliable
// transmission in the on-card control program", section 5.1).
//
// TxSession: sliding window, cumulative acks, adaptive (Jacobson) RTO with
// exponential backoff, dup-ack fast retransmit, and a max-retry budget that
// declares the peer unreachable instead of retrying forever.
// RxSession: in-order acceptance; out-of-order and corrupted packets drop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "bcl/config.hpp"
#include "bcl/recorder.hpp"
#include "bcl/types.hpp"
#include "hw/nic.hpp"
#include "hw/packet.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sim {
class Trace;
}

namespace bcl {

namespace cc {
class CongestionController;
}

// RFC 1982 serial-number arithmetic over the uint32 sequence space: a < b
// iff the signed distance from b to a is negative.  Plain `<=` breaks the
// cumulative-ack comparison the moment next_seq_ wraps past UINT32_MAX.
inline constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

class TxSession {
 public:
  // Invoked exactly once, when the retry budget is exhausted and the
  // session transitions to unreachable.
  using FailureHook = std::function<void()>;

  // With `handshake` set the session opens un-established: send() parks on
  // the establishment gate until the MCP's SYN/SYN-ACK exchange completes
  // (establish()) or the session is poisoned.  Cold-start sessions at
  // incarnation 0 skip the handshake — both ends begin at cfg.first_seq by
  // construction, and the extra control packets would perturb the
  // paper-calibrated baselines.
  TxSession(sim::Engine& eng, hw::Nic& nic, const CostConfig& cfg,
            std::uint64_t seed = 1, bool handshake = false);

  void set_failure_hook(FailureHook hook) { failure_hook_ = std::move(hook); }

  // Observability taps (both optional): protocol events go into the NIC's
  // flight recorder; retransmit episodes are attributed to the victim
  // message's MsgRecord in the trace.  `peer` labels the recorder entries.
  void set_telemetry(FlightRecorder* rec, sim::Trace* trace,
                     hw::NodeId peer) {
    recorder_ = rec;
    trace_ = trace;
    peer_ = peer;
  }

  // Optional congestion controller (owned by the MCP).  When set, every
  // go-back-N resend waits on the per-destination pacer, so a retransmit
  // storm toward a congested peer throttles itself; and the RTO grows by
  // the unacked window's drain time at the paced rate, so throttling never
  // manufactures timeouts.  First launches are paced by the MCP itself,
  // outside the tx mutex.
  void set_cc(cc::CongestionController* cc) { cc_ = cc; }

  // -- multipath failover (installed by the MCP; see bcl::PathTable) ----------
  // `current`: the path id to stamp on every outbound packet, first
  // launches and retransmits alike — Nic::transmit re-expands the source
  // route from it, so a post-failover replay really leaves over the new
  // wire.  `strike`: one RTO expiry charged to the current path; returns
  // true when the path table rotated to a new healthy path, in which case
  // the session resets its escalation (the old path's timeouts prove
  // nothing about the new wire).  `good`: forward progress (ack advance or
  // RNR) — clears the current path's strikes.  Strikes come only from the
  // timer: ECN marks and congestion-inflated RTTs never reach these hooks.
  void set_path_hooks(std::function<std::uint8_t()> current,
                      std::function<bool()> strike,
                      std::function<void()> good) {
    path_current_ = std::move(current);
    path_strike_ = std::move(strike);
    path_good_ = std::move(good);
  }
  // Overrides the error fail_peer() poisons with (default
  // kPeerUnreachable); the MCP answers kPartitioned when every path to the
  // peer is quarantined.
  void set_fail_verdict(std::function<BclErr()> v) {
    fail_verdict_ = std::move(v);
  }

  // Stamps the next sequence number, records a retransmit copy, and
  // transmits.  Blocks while the window is full (and, for handshake
  // sessions, until establishment).  Returns the poison error (without
  // transmitting) once the session is dead: kPeerUnreachable after the
  // retry budget, kPeerRestarted after a crash–restart teardown.
  sim::Task<BclErr> send(hw::Packet p);

  // Parameterized teardown: marks the session dead so every parked and
  // future send fails with `err`, clears the retransmit state, and flushes
  // the end-to-end completion ledger with the error.  fail_peer() is
  // poison(kPeerUnreachable) plus the failure hook; the MCP's crash and
  // peer-restart paths poison with kPeerRestarted and no hook (a restart
  // is not a diagnosis event).  Idempotent.
  void poison(BclErr err);
  // Exhausts the session the retry-budget way: poison(kPeerUnreachable)
  // and fire the failure hook.  Public so the MCP's SYN daemon can apply
  // the ordinary verdict when the handshake ladder is spent.
  void fail_peer();

  // -- establishment gate (crash–restart handshake) ---------------------------
  void establish() { established_.open(); }
  bool established() const { return established_.is_open(); }

  // -- end-to-end completion ledger (cfg.e2e_completion) ----------------------
  // The MCP registers a message's final-fragment sequence here after
  // staging; the hook fires exactly once per entry — with kOk when the
  // cumulative ack passes the sequence, or with the poison error if the
  // session dies first.
  struct TxNotify {
    std::uint32_t seq = 0;
    std::uint64_t msg_id = 0;
    std::uint32_t src_port = 0;
    PortId dst{};
  };
  using CompletionHook = std::function<void(const TxNotify&, BclErr)>;
  void set_completion_hook(CompletionHook h) {
    completion_hook_ = std::move(h);
  }
  // Registers an entry; on an already-poisoned session the hook fires
  // immediately with the poison error (the teardown flush already ran).
  void track(TxNotify n);

  // Newest sequence number handed to the wire (the final fragment's, right
  // after its send() returns).
  std::uint32_t last_seq() const { return next_seq_ - 1; }

  // Cumulative acknowledgement: releases everything with seq <= ack
  // (serial order).  A duplicate cumulative ack means the receiver dropped
  // something out of order; cfg.dupack_k of them trigger a fast retransmit.
  // `echo_stamp`, when nonzero, is the launch time the receiver echoed from
  // the packet that triggered this ack (Packet::echo_stamp): it yields an
  // RTT sample that is valid even for retransmitted packets, keeping the
  // RTO estimator honest while congestion inflates round trips.
  void on_ack(std::uint32_t ack, sim::Time echo_stamp = sim::Time::zero());

  // Receiver-not-ready NACK: releases the acked prefix like on_ack, then
  // holds retransmission for `hold` instead of backing off exponentially.
  // The peer is demonstrably alive, so the retry budget and backoff level
  // reset — a slow receiver must never be misdiagnosed as unreachable.
  void on_rnr(std::uint32_t ack, sim::Time hold);

  std::size_t in_flight() const { return unacked_.size(); }
  bool peer_unreachable() const { return unreachable_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t window_stalls() const { return window_stalls_; }
  std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  std::uint64_t rtt_samples() const { return rtt_samples_; }
  std::uint64_t rnr_events() const { return rnr_events_; }
  int backoff_level() const { return backoff_level_; }
  // Estimator state (zero until the first sample when adaptive).
  sim::Time srtt() const { return srtt_; }
  sim::Time rttvar() const { return rttvar_; }
  // The base RTO currently in force (estimator output or fixed cfg.rto),
  // before backoff and jitter.
  sim::Time rto() const;

 private:
  struct Outstanding {
    hw::Packet pkt;
    sim::Time sent_at = sim::Time::zero();
    bool retransmitted = false;  // Karn: never sample RTT from these
  };

  void arm_timer();
  sim::Task<void> timer();
  // One-shot daemon armed by on_rnr: sleeps out the receiver's hold hint,
  // then resends the window (the NACK regressed the rx session, so the
  // held packets must be replayed for the transfer to finish).
  sim::Task<void> rnr_resume(sim::Time hold);
  // Go-back-N: resend the whole outstanding window in order.  Snapshots the
  // window's sequence numbers before the first co_await — on_ack pops the
  // deque from the front while we are suspended in nic_.transmit, so
  // iterating by index would skip live packets or resend freed slots.
  sim::Task<void> retransmit_window();
  sim::Time effective_rto();
  void note_rtt(sim::Time sample);
  // Fires completion hooks for every ledger entry with seq <= ack.
  void flush_notifies(std::uint32_t ack);
  void rec(FlightKind kind, std::uint64_t msg_id = 0, std::uint32_t seq = 0,
           std::uint64_t aux = 0) {
    if (recorder_ != nullptr) {
      recorder_->record({eng_.now(), kind, peer_, msg_id, seq, aux});
    }
  }

  sim::Engine& eng_;
  hw::Nic& nic_;
  const CostConfig& cfg_;
  sim::Semaphore window_;
  sim::Rng rng_;  // backoff jitter (per-session deterministic stream)
  std::deque<Outstanding> unacked_;  // retransmit copies, seq order
  std::uint32_t next_seq_;
  std::uint32_t last_ack_;  // newest cumulative ack that released data
  int dup_acks_ = 0;
  int backoff_level_ = 0;
  int consecutive_timeouts_ = 0;
  bool have_srtt_ = false;
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  sim::Time last_progress_ = sim::Time::zero();
  bool timer_armed_ = false;
  bool retransmitting_ = false;
  bool unreachable_ = false;
  // Fast-retransmit recovery fence (NewReno's `recover`): no further
  // dup-ack-triggered replays until the cumulative ack passes the highest
  // sequence that was outstanding when the current replay started.
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;
  // Receiver-not-ready hold window: the timer must not count these quiet
  // periods as timeouts, and fast retransmit must not fire into the full
  // pool that just NACKed us.
  sim::Time rnr_hold_until_ = sim::Time::zero();
  bool rnr_wait_armed_ = false;
  // Why the session is dead (valid once unreachable_ is set): retry-budget
  // exhaustion keeps the historical kPeerUnreachable; crash–restart
  // teardowns poison with kPeerRestarted.
  BclErr fail_err_ = BclErr::kPeerUnreachable;
  // Establishment gate: open from birth for cold-start sessions, opened by
  // the SYN-ACK (or by poison, so parked senders fail instead of hanging)
  // for handshake sessions.
  sim::Gate established_;
  std::deque<TxNotify> notifies_;  // e2e ledger, seq order
  CompletionHook completion_hook_;
  FailureHook failure_hook_;
  std::function<std::uint8_t()> path_current_;
  std::function<bool()> path_strike_;
  std::function<void()> path_good_;
  std::function<BclErr()> fail_verdict_;
  cc::CongestionController* cc_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  sim::Trace* trace_ = nullptr;
  hw::NodeId peer_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t rtt_samples_ = 0;
  std::uint64_t rnr_events_ = 0;
};

class RxSession {
 public:
  explicit RxSession(std::uint32_t first_seq = 1) : expected_{first_seq} {}

  // True if the packet is the next expected one (accept it); false means
  // drop (duplicate or out of order after a loss).
  bool accept(std::uint32_t seq) {
    if (seq != expected_) return false;
    ++expected_;
    return true;
  }
  // Highest in-order sequence received (cumulative ack value).  Well
  // defined across wraparound because the sender compares with serial
  // arithmetic, not magnitude.
  std::uint32_t ack_value() const { return expected_ - 1; }

  // Undoes the most recent accept(): the packet was in sequence but the
  // receiver could not take it (pool exhausted, RNR-NACKed), so its
  // retransmission must be acceptable later.  Only valid immediately after
  // the accept it reverts, which the MCP's strictly serial rx pump
  // guarantees.
  void regress() { --expected_; }

 private:
  std::uint32_t expected_;
};

}  // namespace bcl
