#include "bcl/config.hpp"

// Configuration is all aggregate initialization; this TU anchors the
// library target.
