#include "bcl/stack.hpp"

#include <stdexcept>

#include "hw/myrinet_switch.hpp"

namespace bcl {

NodeStack::NodeStack(sim::Engine& eng, hw::NodeId id,
                     const ClusterConfig& cfg, sim::Trace* trace,
                     sim::MetricRegistry* metrics)
    : eng_{eng},
      cfg_{cfg},
      trace_{trace},
      metrics_{metrics},
      node_{eng, id, cfg.node},
      kernel_{eng, node_, cfg.kernel},
      mcp_{eng, node_.nic(), cfg.cost, trace, metrics},
      driver_{kernel_, mcp_, cfg.cost, cfg.nodes, trace, metrics},
      intra_{eng, kernel_, cfg.cost, metrics} {
  if (metrics_ != nullptr) register_node_metrics(*metrics_);
}

void NodeStack::register_node_metrics(sim::MetricRegistry& m) {
  const std::string node_prefix = "node" + std::to_string(node_.id()) + ".";
  // Kernel / pin-down cache (osk layer).
  const std::string osk = node_prefix + "osk.";
  m.counter(osk + "traps", [this] { return kernel_.traps(); });
  m.counter(osk + "pin_hits", [this] { return kernel_.pindown().hits(); });
  m.counter(osk + "pin_misses", [this] { return kernel_.pindown().misses(); });
  m.counter(osk + "pages_pinned_total",
            [this] { return kernel_.pindown().pages_pinned_total(); });
  m.gauge(osk + "pinned_pages", [this] {
    return static_cast<double>(kernel_.pindown().pinned_pages());
  });
  m.gauge(osk + "peak_pinned_pages", [this] {
    return static_cast<double>(kernel_.pindown().peak_pinned_pages());
  });
  // NIC hardware counters.
  const std::string nic = node_prefix + "nic.";
  m.counter(nic + "tx_packets",
            [this] { return node_.nic().tx_packets(); });
  m.counter(nic + "rx_packets",
            [this] { return node_.nic().rx_packets(); });
  m.gauge(nic + "sram_free_bytes", [this] {
    return static_cast<double>(node_.nic().sram_free());
  });
  m.gauge(nic + "rx_queue", [this] {
    return static_cast<double>(node_.nic().rx().size());
  });
}

void NodeStack::register_port_metrics(sim::MetricRegistry& m, Port& port) {
  const std::string prefix = "node" + std::to_string(node_.id()) + ".port" +
                             std::to_string(port.id().port) + ".";
  Port* p = &port;  // ports are heap-allocated and outlive the registry user
  m.counter(prefix + "messages_received",
            [p] { return p->messages_received; });
  m.counter(prefix + "messages_sent", [p] { return p->messages_sent; });
  m.counter(prefix + "sys_drops", [p] { return p->sys_drops; });
  m.counter(prefix + "rnr_events", [p] { return p->rnr_events; });
  m.counter(prefix + "not_posted_drops",
            [p] { return p->not_posted_drops; });
  m.counter(prefix + "rma_errors", [p] { return p->rma_errors; });
  m.gauge(prefix + "recv_cq_depth",
          [p] { return static_cast<double>(p->recv_events().size()); });
  m.gauge(prefix + "send_cq_depth",
          [p] { return static_cast<double>(p->send_events().size()); });
}

Endpoint& NodeStack::open_endpoint() {
  if (next_port_ >= cfg_.cost.max_ports) {
    throw std::runtime_error("all BCL ports on this node are in use");
  }
  auto& proc = kernel_.create_process();
  const PortId pid{node_.id(), next_port_++};
  auto port = std::make_unique<Port>(eng_, pid, proc, cfg_.cost);
  if (driver_.setup_system_channel(proc, *port, cfg_.cost.sys_slots,
                                   cfg_.cost.sys_slot_bytes) != BclErr::kOk) {
    throw std::runtime_error("system channel setup failed");
  }
  if (metrics_ != nullptr) register_port_metrics(*metrics_, *port);
  endpoints_.push_back(std::make_unique<Endpoint>(
      eng_, cfg_.cost, driver_, mcp_, intra_, proc, std::move(port), trace_,
      metrics_));
  return *endpoints_.back();
}

BclCluster::BclCluster(const ClusterConfig& cfg)
    : cfg_{cfg}, trace_{eng_}, sampler_{eng_, metrics_} {
  // Spans feed per-stage summaries in the registry even when full event
  // recording is off, so registry and trace always agree.
  trace_.set_registry(&metrics_);
  fabric_ = hw::make_fabric(eng_, cfg_.nodes, cfg_.fabric);
  stacks_.reserve(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    stacks_.push_back(
        std::make_unique<NodeStack>(eng_, i, cfg_, &trace_, &metrics_));
    fabric_->attach(i, stacks_.back()->node().nic());
  }
  // After attach: node links exist only once every NIC is wired in (the
  // Myrinet host links are created by attach itself, so the trace hookup
  // must also wait until here).
  fabric_->register_metrics(metrics_);
  fabric_->set_trace(&trace_);
  // Malformed source routes caught inside the crossbars surface as a
  // rate-limited kRouteError warning in the offending sender's flight
  // recorder (the switch counter alone says nothing about whose route).
  if (auto* myri = dynamic_cast<hw::MyrinetFabric*>(fabric_.get())) {
    myri->set_route_error_hook(
        [this](const std::string&, const hw::Packet& p) {
          if (p.src_node >= stacks_.size()) return;
          stacks_[p.src_node]->mcp().recorder().record(
              {eng_.now(), FlightKind::kRouteError, p.dst_node, p.msg_id,
               p.seq, p.route_pos});
        });
  }
  trace_.set_event_cap(cfg_.trace_event_cap);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    const hw::NodeId nid = i;
    stacks_[i]->mcp().set_diagnosis_hook(
        [this, nid](const std::string& reason, int peer,
                    const std::string& victim) {
          if (postmortems_.size() >= cfg_.postmortem_max) {
            ++postmortems_suppressed_;
            return;
          }
          postmortems_.push_back(build_postmortem(
              *this, nid, reason, peer, victim, cfg_.postmortem_top_links));
        });
  }
}

}  // namespace bcl
