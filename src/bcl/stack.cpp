#include "bcl/stack.hpp"

#include <stdexcept>

namespace bcl {

NodeStack::NodeStack(sim::Engine& eng, hw::NodeId id,
                     const ClusterConfig& cfg, sim::Trace* trace)
    : eng_{eng},
      cfg_{cfg},
      trace_{trace},
      node_{eng, id, cfg.node},
      kernel_{eng, node_, cfg.kernel},
      mcp_{eng, node_.nic(), cfg.cost, trace},
      driver_{kernel_, mcp_, cfg.cost, cfg.nodes, trace},
      intra_{eng, kernel_, cfg.cost} {}

Endpoint& NodeStack::open_endpoint() {
  if (next_port_ >= cfg_.cost.max_ports) {
    throw std::runtime_error("all BCL ports on this node are in use");
  }
  auto& proc = kernel_.create_process();
  const PortId pid{node_.id(), next_port_++};
  auto port = std::make_unique<Port>(eng_, pid, proc, cfg_.cost);
  if (driver_.setup_system_channel(proc, *port, cfg_.cost.sys_slots,
                                   cfg_.cost.sys_slot_bytes) != BclErr::kOk) {
    throw std::runtime_error("system channel setup failed");
  }
  endpoints_.push_back(std::make_unique<Endpoint>(
      eng_, cfg_.cost, driver_, mcp_, intra_, proc, std::move(port), trace_));
  return *endpoints_.back();
}

BclCluster::BclCluster(const ClusterConfig& cfg)
    : cfg_{cfg}, trace_{eng_} {
  fabric_ = hw::make_fabric(eng_, cfg_.nodes, cfg_.fabric);
  stacks_.reserve(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    stacks_.push_back(
        std::make_unique<NodeStack>(eng_, i, cfg_, &trace_));
    fabric_->attach(i, stacks_.back()->node().nic());
  }
}

}  // namespace bcl
