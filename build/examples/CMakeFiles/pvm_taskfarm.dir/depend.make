# Empty dependencies file for pvm_taskfarm.
# This may be replaced when dependencies are built.
