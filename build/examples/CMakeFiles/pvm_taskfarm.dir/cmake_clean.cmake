file(REMOVE_RECURSE
  "CMakeFiles/pvm_taskfarm.dir/pvm_taskfarm.cpp.o"
  "CMakeFiles/pvm_taskfarm.dir/pvm_taskfarm.cpp.o.d"
  "pvm_taskfarm"
  "pvm_taskfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_taskfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
