file(REMOVE_RECURSE
  "CMakeFiles/hetero_fabric.dir/hetero_fabric.cpp.o"
  "CMakeFiles/hetero_fabric.dir/hetero_fabric.cpp.o.d"
  "hetero_fabric"
  "hetero_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
