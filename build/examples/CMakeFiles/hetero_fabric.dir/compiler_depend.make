# Empty compiler generated dependencies file for hetero_fabric.
# This may be replaced when dependencies are built.
