# Empty dependencies file for rma_pagerank.
# This may be replaced when dependencies are built.
