file(REMOVE_RECURSE
  "CMakeFiles/rma_pagerank.dir/rma_pagerank.cpp.o"
  "CMakeFiles/rma_pagerank.dir/rma_pagerank.cpp.o.d"
  "rma_pagerank"
  "rma_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
