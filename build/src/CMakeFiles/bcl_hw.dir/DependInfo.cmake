
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu.cpp" "src/CMakeFiles/bcl_hw.dir/hw/cpu.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/cpu.cpp.o.d"
  "/root/repo/src/hw/link.cpp" "src/CMakeFiles/bcl_hw.dir/hw/link.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/link.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/CMakeFiles/bcl_hw.dir/hw/memory.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/memory.cpp.o.d"
  "/root/repo/src/hw/mesh.cpp" "src/CMakeFiles/bcl_hw.dir/hw/mesh.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/mesh.cpp.o.d"
  "/root/repo/src/hw/myrinet_switch.cpp" "src/CMakeFiles/bcl_hw.dir/hw/myrinet_switch.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/myrinet_switch.cpp.o.d"
  "/root/repo/src/hw/nic.cpp" "src/CMakeFiles/bcl_hw.dir/hw/nic.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/nic.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/CMakeFiles/bcl_hw.dir/hw/node.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/node.cpp.o.d"
  "/root/repo/src/hw/pci.cpp" "src/CMakeFiles/bcl_hw.dir/hw/pci.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/pci.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/CMakeFiles/bcl_hw.dir/hw/topology.cpp.o" "gcc" "src/CMakeFiles/bcl_hw.dir/hw/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
