# Empty compiler generated dependencies file for bcl_hw.
# This may be replaced when dependencies are built.
