file(REMOVE_RECURSE
  "CMakeFiles/bcl_hw.dir/hw/cpu.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/cpu.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/link.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/link.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/memory.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/memory.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/mesh.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/mesh.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/myrinet_switch.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/myrinet_switch.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/nic.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/nic.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/node.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/node.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/pci.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/pci.cpp.o.d"
  "CMakeFiles/bcl_hw.dir/hw/topology.cpp.o"
  "CMakeFiles/bcl_hw.dir/hw/topology.cpp.o.d"
  "libbcl_hw.a"
  "libbcl_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
