file(REMOVE_RECURSE
  "libbcl_hw.a"
)
