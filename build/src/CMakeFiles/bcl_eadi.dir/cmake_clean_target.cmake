file(REMOVE_RECURSE
  "libbcl_eadi.a"
)
