# Empty compiler generated dependencies file for bcl_eadi.
# This may be replaced when dependencies are built.
