file(REMOVE_RECURSE
  "CMakeFiles/bcl_eadi.dir/eadi/eadi.cpp.o"
  "CMakeFiles/bcl_eadi.dir/eadi/eadi.cpp.o.d"
  "libbcl_eadi.a"
  "libbcl_eadi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_eadi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
