file(REMOVE_RECURSE
  "CMakeFiles/bcl_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/bcl_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/bcl_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/bcl_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/bcl_sim.dir/sim/sync.cpp.o"
  "CMakeFiles/bcl_sim.dir/sim/sync.cpp.o.d"
  "CMakeFiles/bcl_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/bcl_sim.dir/sim/trace.cpp.o.d"
  "libbcl_sim.a"
  "libbcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
