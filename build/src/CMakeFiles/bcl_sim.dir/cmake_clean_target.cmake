file(REMOVE_RECURSE
  "libbcl_sim.a"
)
