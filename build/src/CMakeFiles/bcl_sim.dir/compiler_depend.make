# Empty compiler generated dependencies file for bcl_sim.
# This may be replaced when dependencies are built.
