file(REMOVE_RECURSE
  "CMakeFiles/bcl_minimpi.dir/minimpi/collectives.cpp.o"
  "CMakeFiles/bcl_minimpi.dir/minimpi/collectives.cpp.o.d"
  "CMakeFiles/bcl_minimpi.dir/minimpi/mpi.cpp.o"
  "CMakeFiles/bcl_minimpi.dir/minimpi/mpi.cpp.o.d"
  "libbcl_minimpi.a"
  "libbcl_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
