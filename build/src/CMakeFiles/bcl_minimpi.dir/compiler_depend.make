# Empty compiler generated dependencies file for bcl_minimpi.
# This may be replaced when dependencies are built.
