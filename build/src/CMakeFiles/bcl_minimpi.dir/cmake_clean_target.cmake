file(REMOVE_RECURSE
  "libbcl_minimpi.a"
)
