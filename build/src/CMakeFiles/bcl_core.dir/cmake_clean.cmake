file(REMOVE_RECURSE
  "CMakeFiles/bcl_core.dir/bcl/channel.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/channel.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/config.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/config.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/driver.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/driver.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/intranode.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/intranode.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/library.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/library.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/mcp.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/mcp.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/port.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/port.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/reliable.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/reliable.cpp.o.d"
  "CMakeFiles/bcl_core.dir/bcl/stack.cpp.o"
  "CMakeFiles/bcl_core.dir/bcl/stack.cpp.o.d"
  "libbcl_core.a"
  "libbcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
