file(REMOVE_RECURSE
  "libbcl_core.a"
)
