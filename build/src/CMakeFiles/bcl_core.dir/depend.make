# Empty dependencies file for bcl_core.
# This may be replaced when dependencies are built.
