
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bcl/channel.cpp" "src/CMakeFiles/bcl_core.dir/bcl/channel.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/channel.cpp.o.d"
  "/root/repo/src/bcl/config.cpp" "src/CMakeFiles/bcl_core.dir/bcl/config.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/config.cpp.o.d"
  "/root/repo/src/bcl/driver.cpp" "src/CMakeFiles/bcl_core.dir/bcl/driver.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/driver.cpp.o.d"
  "/root/repo/src/bcl/intranode.cpp" "src/CMakeFiles/bcl_core.dir/bcl/intranode.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/intranode.cpp.o.d"
  "/root/repo/src/bcl/library.cpp" "src/CMakeFiles/bcl_core.dir/bcl/library.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/library.cpp.o.d"
  "/root/repo/src/bcl/mcp.cpp" "src/CMakeFiles/bcl_core.dir/bcl/mcp.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/mcp.cpp.o.d"
  "/root/repo/src/bcl/port.cpp" "src/CMakeFiles/bcl_core.dir/bcl/port.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/port.cpp.o.d"
  "/root/repo/src/bcl/reliable.cpp" "src/CMakeFiles/bcl_core.dir/bcl/reliable.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/reliable.cpp.o.d"
  "/root/repo/src/bcl/stack.cpp" "src/CMakeFiles/bcl_core.dir/bcl/stack.cpp.o" "gcc" "src/CMakeFiles/bcl_core.dir/bcl/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcl_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
