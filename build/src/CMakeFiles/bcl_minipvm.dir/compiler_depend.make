# Empty compiler generated dependencies file for bcl_minipvm.
# This may be replaced when dependencies are built.
