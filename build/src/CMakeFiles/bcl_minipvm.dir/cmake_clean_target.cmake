file(REMOVE_RECURSE
  "libbcl_minipvm.a"
)
