file(REMOVE_RECURSE
  "CMakeFiles/bcl_minipvm.dir/minipvm/pvm.cpp.o"
  "CMakeFiles/bcl_minipvm.dir/minipvm/pvm.cpp.o.d"
  "libbcl_minipvm.a"
  "libbcl_minipvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_minipvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
