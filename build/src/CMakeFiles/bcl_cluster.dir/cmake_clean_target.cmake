file(REMOVE_RECURSE
  "libbcl_cluster.a"
)
