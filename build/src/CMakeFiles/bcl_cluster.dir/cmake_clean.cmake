file(REMOVE_RECURSE
  "CMakeFiles/bcl_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/bcl_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/bcl_cluster.dir/cluster/harness.cpp.o"
  "CMakeFiles/bcl_cluster.dir/cluster/harness.cpp.o.d"
  "CMakeFiles/bcl_cluster.dir/cluster/report.cpp.o"
  "CMakeFiles/bcl_cluster.dir/cluster/report.cpp.o.d"
  "CMakeFiles/bcl_cluster.dir/cluster/workload.cpp.o"
  "CMakeFiles/bcl_cluster.dir/cluster/workload.cpp.o.d"
  "libbcl_cluster.a"
  "libbcl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
