# Empty compiler generated dependencies file for bcl_cluster.
# This may be replaced when dependencies are built.
