file(REMOVE_RECURSE
  "CMakeFiles/bcl_osk.dir/osk/interrupt.cpp.o"
  "CMakeFiles/bcl_osk.dir/osk/interrupt.cpp.o.d"
  "CMakeFiles/bcl_osk.dir/osk/kernel.cpp.o"
  "CMakeFiles/bcl_osk.dir/osk/kernel.cpp.o.d"
  "CMakeFiles/bcl_osk.dir/osk/pindown.cpp.o"
  "CMakeFiles/bcl_osk.dir/osk/pindown.cpp.o.d"
  "CMakeFiles/bcl_osk.dir/osk/process.cpp.o"
  "CMakeFiles/bcl_osk.dir/osk/process.cpp.o.d"
  "CMakeFiles/bcl_osk.dir/osk/shm.cpp.o"
  "CMakeFiles/bcl_osk.dir/osk/shm.cpp.o.d"
  "libbcl_osk.a"
  "libbcl_osk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_osk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
