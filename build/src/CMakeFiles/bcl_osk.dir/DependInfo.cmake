
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osk/interrupt.cpp" "src/CMakeFiles/bcl_osk.dir/osk/interrupt.cpp.o" "gcc" "src/CMakeFiles/bcl_osk.dir/osk/interrupt.cpp.o.d"
  "/root/repo/src/osk/kernel.cpp" "src/CMakeFiles/bcl_osk.dir/osk/kernel.cpp.o" "gcc" "src/CMakeFiles/bcl_osk.dir/osk/kernel.cpp.o.d"
  "/root/repo/src/osk/pindown.cpp" "src/CMakeFiles/bcl_osk.dir/osk/pindown.cpp.o" "gcc" "src/CMakeFiles/bcl_osk.dir/osk/pindown.cpp.o.d"
  "/root/repo/src/osk/process.cpp" "src/CMakeFiles/bcl_osk.dir/osk/process.cpp.o" "gcc" "src/CMakeFiles/bcl_osk.dir/osk/process.cpp.o.d"
  "/root/repo/src/osk/shm.cpp" "src/CMakeFiles/bcl_osk.dir/osk/shm.cpp.o" "gcc" "src/CMakeFiles/bcl_osk.dir/osk/shm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
