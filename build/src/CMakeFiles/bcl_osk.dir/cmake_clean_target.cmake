file(REMOVE_RECURSE
  "libbcl_osk.a"
)
