# Empty compiler generated dependencies file for bcl_osk.
# This may be replaced when dependencies are built.
