# Empty compiler generated dependencies file for bcl_baselines.
# This may be replaced when dependencies are built.
