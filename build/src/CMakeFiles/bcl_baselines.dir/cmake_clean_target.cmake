file(REMOVE_RECURSE
  "libbcl_baselines.a"
)
