file(REMOVE_RECURSE
  "CMakeFiles/bcl_baselines.dir/baselines/am2.cpp.o"
  "CMakeFiles/bcl_baselines.dir/baselines/am2.cpp.o.d"
  "CMakeFiles/bcl_baselines.dir/baselines/bip.cpp.o"
  "CMakeFiles/bcl_baselines.dir/baselines/bip.cpp.o.d"
  "CMakeFiles/bcl_baselines.dir/baselines/kernel_level.cpp.o"
  "CMakeFiles/bcl_baselines.dir/baselines/kernel_level.cpp.o.d"
  "CMakeFiles/bcl_baselines.dir/baselines/user_level.cpp.o"
  "CMakeFiles/bcl_baselines.dir/baselines/user_level.cpp.o.d"
  "libbcl_baselines.a"
  "libbcl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
