# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/hw_basic_test[1]_include.cmake")
include("/root/repo/build/tests/hw_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/osk_test[1]_include.cmake")
include("/root/repo/build/tests/bcl_core_test[1]_include.cmake")
include("/root/repo/build/tests/bcl_reliability_test[1]_include.cmake")
include("/root/repo/build/tests/bcl_intranode_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eadi_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/minipvm_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/property_integrity_test[1]_include.cmake")
include("/root/repo/build/tests/property_reliability_test[1]_include.cmake")
include("/root/repo/build/tests/property_perf_test[1]_include.cmake")
include("/root/repo/build/tests/property_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_ext_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/eadi_stress_test[1]_include.cmake")
include("/root/repo/build/tests/minipvm_ext_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/scale_test[1]_include.cmake")
include("/root/repo/build/tests/hw_link_model_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
