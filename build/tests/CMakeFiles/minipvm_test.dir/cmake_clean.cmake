file(REMOVE_RECURSE
  "CMakeFiles/minipvm_test.dir/minipvm_test.cpp.o"
  "CMakeFiles/minipvm_test.dir/minipvm_test.cpp.o.d"
  "minipvm_test"
  "minipvm_test.pdb"
  "minipvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
