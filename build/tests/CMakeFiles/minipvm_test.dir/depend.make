# Empty dependencies file for minipvm_test.
# This may be replaced when dependencies are built.
