# Empty dependencies file for osk_test.
# This may be replaced when dependencies are built.
