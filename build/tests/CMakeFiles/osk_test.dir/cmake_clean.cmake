file(REMOVE_RECURSE
  "CMakeFiles/osk_test.dir/osk_test.cpp.o"
  "CMakeFiles/osk_test.dir/osk_test.cpp.o.d"
  "osk_test"
  "osk_test.pdb"
  "osk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
