file(REMOVE_RECURSE
  "CMakeFiles/hw_basic_test.dir/hw_basic_test.cpp.o"
  "CMakeFiles/hw_basic_test.dir/hw_basic_test.cpp.o.d"
  "hw_basic_test"
  "hw_basic_test.pdb"
  "hw_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
