# Empty dependencies file for eadi_stress_test.
# This may be replaced when dependencies are built.
