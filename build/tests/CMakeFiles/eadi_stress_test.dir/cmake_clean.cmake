file(REMOVE_RECURSE
  "CMakeFiles/eadi_stress_test.dir/eadi_stress_test.cpp.o"
  "CMakeFiles/eadi_stress_test.dir/eadi_stress_test.cpp.o.d"
  "eadi_stress_test"
  "eadi_stress_test.pdb"
  "eadi_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadi_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
