file(REMOVE_RECURSE
  "CMakeFiles/minimpi_ext_test.dir/minimpi_ext_test.cpp.o"
  "CMakeFiles/minimpi_ext_test.dir/minimpi_ext_test.cpp.o.d"
  "minimpi_ext_test"
  "minimpi_ext_test.pdb"
  "minimpi_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
