# Empty compiler generated dependencies file for minimpi_ext_test.
# This may be replaced when dependencies are built.
