file(REMOVE_RECURSE
  "CMakeFiles/hw_fabric_test.dir/hw_fabric_test.cpp.o"
  "CMakeFiles/hw_fabric_test.dir/hw_fabric_test.cpp.o.d"
  "hw_fabric_test"
  "hw_fabric_test.pdb"
  "hw_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
