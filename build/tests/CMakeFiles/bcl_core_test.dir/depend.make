# Empty dependencies file for bcl_core_test.
# This may be replaced when dependencies are built.
