file(REMOVE_RECURSE
  "CMakeFiles/bcl_core_test.dir/bcl_core_test.cpp.o"
  "CMakeFiles/bcl_core_test.dir/bcl_core_test.cpp.o.d"
  "bcl_core_test"
  "bcl_core_test.pdb"
  "bcl_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
