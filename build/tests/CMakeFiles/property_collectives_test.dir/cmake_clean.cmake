file(REMOVE_RECURSE
  "CMakeFiles/property_collectives_test.dir/property_collectives_test.cpp.o"
  "CMakeFiles/property_collectives_test.dir/property_collectives_test.cpp.o.d"
  "property_collectives_test"
  "property_collectives_test.pdb"
  "property_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
