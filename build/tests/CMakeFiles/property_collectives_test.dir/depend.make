# Empty dependencies file for property_collectives_test.
# This may be replaced when dependencies are built.
