file(REMOVE_RECURSE
  "CMakeFiles/property_integrity_test.dir/property_integrity_test.cpp.o"
  "CMakeFiles/property_integrity_test.dir/property_integrity_test.cpp.o.d"
  "property_integrity_test"
  "property_integrity_test.pdb"
  "property_integrity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_integrity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
