# Empty dependencies file for property_integrity_test.
# This may be replaced when dependencies are built.
