# Empty dependencies file for bcl_intranode_test.
# This may be replaced when dependencies are built.
