file(REMOVE_RECURSE
  "CMakeFiles/bcl_intranode_test.dir/bcl_intranode_test.cpp.o"
  "CMakeFiles/bcl_intranode_test.dir/bcl_intranode_test.cpp.o.d"
  "bcl_intranode_test"
  "bcl_intranode_test.pdb"
  "bcl_intranode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_intranode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
