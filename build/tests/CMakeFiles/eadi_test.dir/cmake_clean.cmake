file(REMOVE_RECURSE
  "CMakeFiles/eadi_test.dir/eadi_test.cpp.o"
  "CMakeFiles/eadi_test.dir/eadi_test.cpp.o.d"
  "eadi_test"
  "eadi_test.pdb"
  "eadi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
