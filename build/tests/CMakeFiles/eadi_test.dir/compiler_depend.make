# Empty compiler generated dependencies file for eadi_test.
# This may be replaced when dependencies are built.
