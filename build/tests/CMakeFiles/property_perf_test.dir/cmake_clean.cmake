file(REMOVE_RECURSE
  "CMakeFiles/property_perf_test.dir/property_perf_test.cpp.o"
  "CMakeFiles/property_perf_test.dir/property_perf_test.cpp.o.d"
  "property_perf_test"
  "property_perf_test.pdb"
  "property_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
