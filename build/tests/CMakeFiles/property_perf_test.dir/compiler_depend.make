# Empty compiler generated dependencies file for property_perf_test.
# This may be replaced when dependencies are built.
