file(REMOVE_RECURSE
  "CMakeFiles/minipvm_ext_test.dir/minipvm_ext_test.cpp.o"
  "CMakeFiles/minipvm_ext_test.dir/minipvm_ext_test.cpp.o.d"
  "minipvm_ext_test"
  "minipvm_ext_test.pdb"
  "minipvm_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipvm_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
