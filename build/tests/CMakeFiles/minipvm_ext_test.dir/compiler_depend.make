# Empty compiler generated dependencies file for minipvm_ext_test.
# This may be replaced when dependencies are built.
