# Empty compiler generated dependencies file for bcl_reliability_test.
# This may be replaced when dependencies are built.
