file(REMOVE_RECURSE
  "CMakeFiles/bcl_reliability_test.dir/bcl_reliability_test.cpp.o"
  "CMakeFiles/bcl_reliability_test.dir/bcl_reliability_test.cpp.o.d"
  "bcl_reliability_test"
  "bcl_reliability_test.pdb"
  "bcl_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
