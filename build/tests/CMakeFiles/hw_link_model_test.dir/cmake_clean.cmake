file(REMOVE_RECURSE
  "CMakeFiles/hw_link_model_test.dir/hw_link_model_test.cpp.o"
  "CMakeFiles/hw_link_model_test.dir/hw_link_model_test.cpp.o.d"
  "hw_link_model_test"
  "hw_link_model_test.pdb"
  "hw_link_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_link_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
