file(REMOVE_RECURSE
  "CMakeFiles/property_reliability_test.dir/property_reliability_test.cpp.o"
  "CMakeFiles/property_reliability_test.dir/property_reliability_test.cpp.o.d"
  "property_reliability_test"
  "property_reliability_test.pdb"
  "property_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
