# Empty compiler generated dependencies file for property_reliability_test.
# This may be replaced when dependencies are built.
