file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pio.dir/bench_abl_pio.cpp.o"
  "CMakeFiles/bench_abl_pio.dir/bench_abl_pio.cpp.o.d"
  "bench_abl_pio"
  "bench_abl_pio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
