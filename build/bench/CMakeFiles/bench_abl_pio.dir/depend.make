# Empty dependencies file for bench_abl_pio.
# This may be replaced when dependencies are built.
