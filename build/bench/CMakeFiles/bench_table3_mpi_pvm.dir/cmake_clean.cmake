file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mpi_pvm.dir/bench_table3_mpi_pvm.cpp.o"
  "CMakeFiles/bench_table3_mpi_pvm.dir/bench_table3_mpi_pvm.cpp.o.d"
  "bench_table3_mpi_pvm"
  "bench_table3_mpi_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mpi_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
