# Empty compiler generated dependencies file for bench_table3_mpi_pvm.
# This may be replaced when dependencies are built.
