# Empty compiler generated dependencies file for bench_abl_pipeline.
# This may be replaced when dependencies are built.
