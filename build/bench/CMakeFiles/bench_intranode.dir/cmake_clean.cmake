file(REMOVE_RECURSE
  "CMakeFiles/bench_intranode.dir/bench_intranode.cpp.o"
  "CMakeFiles/bench_intranode.dir/bench_intranode.cpp.o.d"
  "bench_intranode"
  "bench_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
