file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_mesh.dir/bench_abl_mesh.cpp.o"
  "CMakeFiles/bench_abl_mesh.dir/bench_abl_mesh.cpp.o.d"
  "bench_abl_mesh"
  "bench_abl_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
