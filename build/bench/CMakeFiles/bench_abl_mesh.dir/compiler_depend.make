# Empty compiler generated dependencies file for bench_abl_mesh.
# This may be replaced when dependencies are built.
