# Empty compiler generated dependencies file for bench_fig6_recv_timeline.
# This may be replaced when dependencies are built.
