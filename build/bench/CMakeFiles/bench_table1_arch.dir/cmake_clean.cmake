file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_arch.dir/bench_table1_arch.cpp.o"
  "CMakeFiles/bench_table1_arch.dir/bench_table1_arch.cpp.o.d"
  "bench_table1_arch"
  "bench_table1_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
