file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_reliability.dir/bench_abl_reliability.cpp.o"
  "CMakeFiles/bench_abl_reliability.dir/bench_abl_reliability.cpp.o.d"
  "bench_abl_reliability"
  "bench_abl_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
