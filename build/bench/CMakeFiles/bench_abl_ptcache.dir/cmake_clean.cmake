file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ptcache.dir/bench_abl_ptcache.cpp.o"
  "CMakeFiles/bench_abl_ptcache.dir/bench_abl_ptcache.cpp.o.d"
  "bench_abl_ptcache"
  "bench_abl_ptcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ptcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
