# Empty dependencies file for bench_abl_ptcache.
# This may be replaced when dependencies are built.
