file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cpu.dir/bench_abl_cpu.cpp.o"
  "CMakeFiles/bench_abl_cpu.dir/bench_abl_cpu.cpp.o.d"
  "bench_abl_cpu"
  "bench_abl_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
