# Empty dependencies file for bench_abl_cpu.
# This may be replaced when dependencies are built.
