// Jacobi heat diffusion with halo exchange over mini-MPI.
//
// A 1-D domain decomposition of a 2-D grid across 8 ranks on 4 nodes:
// each iteration exchanges boundary rows with both neighbours, relaxes the
// interior, and every few iterations the ranks allreduce the residual.
// The example verifies the parallel result against a serial computation.
//
// Run: ./build/examples/halo_exchange
#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kNx = 64;            // columns
constexpr int kRowsPerRank = 8;    // interior rows per rank
constexpr int kNy = kRanks * kRowsPerRank;
constexpr int kIters = 30;

double initial_value(int y, int x) {
  // Hot edge at y == 0, a hot spot in the middle.
  if (y == 0) return 100.0;
  if (y == kNy / 2 && x == kNx / 2) return 50.0;
  return 0.0;
}

bool is_fixed(int y, int x) {
  return y == 0 || (y == kNy / 2 && x == kNx / 2);
}

// Serial reference: full-grid Jacobi.
std::vector<double> serial_solution() {
  std::vector<double> grid(kNy * kNx), next(kNy * kNx);
  for (int y = 0; y < kNy; ++y) {
    for (int x = 0; x < kNx; ++x) grid[y * kNx + x] = initial_value(y, x);
  }
  for (int it = 0; it < kIters; ++it) {
    for (int y = 0; y < kNy; ++y) {
      for (int x = 0; x < kNx; ++x) {
        if (is_fixed(y, x) || y == kNy - 1 || x == 0 || x == kNx - 1) {
          next[y * kNx + x] = grid[y * kNx + x];
          continue;
        }
        next[y * kNx + x] = 0.25 * (grid[(y - 1) * kNx + x] +
                                    grid[(y + 1) * kNx + x] +
                                    grid[y * kNx + x - 1] +
                                    grid[y * kNx + x + 1]);
      }
    }
    grid.swap(next);
  }
  return grid;
}

sim::Task<void> jacobi_rank(cluster::World& world, int rank,
                            std::vector<double>& out) {
  auto& me = world.mpi(rank);
  const int y0 = rank * kRowsPerRank;  // first owned row
  constexpr std::size_t kRowBytes = kNx * sizeof(double);

  // Local block with one halo row above and below.
  std::vector<double> grid((kRowsPerRank + 2) * kNx, 0.0);
  std::vector<double> next = grid;
  for (int r = 0; r < kRowsPerRank; ++r) {
    for (int x = 0; x < kNx; ++x) {
      grid[(r + 1) * kNx + x] = initial_value(y0 + r, x);
    }
  }
  auto up_out = me.process().alloc(kRowBytes);
  auto down_out = me.process().alloc(kRowBytes);
  auto up_in = me.process().alloc(kRowBytes);
  auto down_in = me.process().alloc(kRowBytes);

  for (int it = 0; it < kIters; ++it) {
    // Exchange halos with neighbours (no wrap-around).
    std::vector<minimpi::Mpi::Request> reqs;
    if (rank > 0) {
      me.write_doubles(up_out, std::span{grid}.subspan(kNx, kNx));
      reqs.push_back(me.isend(up_out, kRowBytes, rank - 1, 10));
      reqs.push_back(me.irecv(up_in, rank - 1, 11));
    }
    if (rank < kRanks - 1) {
      me.write_doubles(down_out,
                       std::span{grid}.subspan(kRowsPerRank * kNx, kNx));
      reqs.push_back(me.isend(down_out, kRowBytes, rank + 1, 11));
      reqs.push_back(me.irecv(down_in, rank + 1, 10));
    }
    co_await me.waitall(std::move(reqs));
    if (rank > 0) {
      const auto halo = me.read_doubles(up_in, kNx);
      std::copy(halo.begin(), halo.end(), grid.begin());
    }
    if (rank < kRanks - 1) {
      const auto halo = me.read_doubles(down_in, kNx);
      std::copy(halo.begin(), halo.end(),
                grid.begin() + (kRowsPerRank + 1) * kNx);
    }

    // Relax the interior (cost model: a few ns per cell).
    co_await me.process().cpu().busy(
        sim::Time::ns(5.0 * kRowsPerRank * kNx));
    for (int r = 1; r <= kRowsPerRank; ++r) {
      const int y = y0 + r - 1;
      for (int x = 0; x < kNx; ++x) {
        // Global boundaries and fixed cells hold; everything else relaxes
        // (halo rows supply the cross-rank neighbours).
        if (y == 0 || y == kNy - 1 || x == 0 || x == kNx - 1 ||
            is_fixed(y, x)) {
          next[r * kNx + x] = grid[r * kNx + x];
        } else {
          next[r * kNx + x] = 0.25 * (grid[(r - 1) * kNx + x] +
                                      grid[(r + 1) * kNx + x] +
                                      grid[r * kNx + x - 1] +
                                      grid[r * kNx + x + 1]);
        }
      }
    }
    grid.swap(next);

    if (it % 10 == 9) {
      // Global heat via allreduce (diagnostic).
      double local = 0;
      for (int r = 1; r <= kRowsPerRank; ++r) {
        for (int x = 0; x < kNx; ++x) {
          local += grid[r * kNx + x];
        }
      }
      auto in = me.process().alloc(sizeof(double));
      auto out_buf = me.process().alloc(sizeof(double));
      me.write_doubles(in, std::vector<double>{local});
      co_await me.allreduce(in, out_buf, 1);
      if (rank == 0) {
        std::printf("  iter %2d: total heat %.3f (t=%s)\n", it + 1,
                    me.read_doubles(out_buf, 1)[0],
                    world.engine().now().str().c_str());
      }
      me.process().free(in);
      me.process().free(out_buf);
    }
  }
  out.assign(grid.begin() + kNx, grid.begin() + (kRowsPerRank + 1) * kNx);
}

}  // namespace

int main() {
  std::printf("Jacobi %dx%d on %d MPI ranks over BCL (4 nodes x 2 ranks)\n",
              kNy, kNx, kRanks);
  cluster::WorldConfig cfg;
  cfg.cluster.nodes = 4;
  cfg.cluster.node.mem_bytes = 32u << 20;
  cluster::World world{cfg, kRanks};
  std::vector<std::vector<double>> blocks(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    world.engine().spawn(jacobi_rank(world, r, blocks[r]));
  }
  world.engine().run();

  const auto reference = serial_solution();
  double max_err = 0;
  for (int rank = 0; rank < kRanks; ++rank) {
    for (int r = 0; r < kRowsPerRank; ++r) {
      for (int x = 0; x < kNx; ++x) {
        const double got = blocks[rank][r * kNx + x];
        const double want =
            reference[(rank * kRowsPerRank + r) * kNx + x];
        max_err = std::max(max_err, std::abs(got - want));
      }
    }
  }
  std::printf("max |parallel - serial| = %.2e  (%s)\n", max_err,
              max_err < 1e-9 ? "MATCH" : "MISMATCH");
  std::printf("simulated wall time: %s\n",
              world.engine().now().str().c_str());
  return max_err < 1e-9 ? 0 : 1;
}
