# Runs metrics_dashboard and validates every export format:
#   * metrics.json, trace.json, congestion.json, and postmortem.json parse
#     with `python3 -m json.tool`
#   * metrics.csv starts with a "time_us,..." header and has data rows
#   * metrics.prom carries "# TYPE bcl_..." exposition lines
#   * congestion.json names links with utilization; postmortem.json carries
#     the flight-recorder timeline and congestion-ranked links
# Invoked as a ctest case:
#   cmake -DDASHBOARD=<exe> -DOUT_DIR=<dir> -P validate_metrics.cmake

file(MAKE_DIRECTORY "${OUT_DIR}")
execute_process(COMMAND "${DASHBOARD}" "${OUT_DIR}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics_dashboard failed with exit code ${rc}")
endif()

foreach(f metrics.json metrics.prom metrics.csv trace.json
        congestion.json postmortem.json)
  if(NOT EXISTS "${OUT_DIR}/${f}")
    message(FATAL_ERROR "missing export: ${OUT_DIR}/${f}")
  endif()
endforeach()

find_program(PYTHON3 python3)
if(PYTHON3)
  foreach(f metrics.json trace.json congestion.json postmortem.json)
    execute_process(COMMAND "${PYTHON3}" -m json.tool "${OUT_DIR}/${f}"
                    OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE jrc)
    if(NOT jrc EQUAL 0)
      message(FATAL_ERROR "${f} is not valid JSON: ${err}")
    endif()
  endforeach()
else()
  message(WARNING "python3 not found; skipping JSON validation")
endif()

file(STRINGS "${OUT_DIR}/metrics.csv" csv_lines)
list(LENGTH csv_lines csv_count)
if(csv_count LESS 2)
  message(FATAL_ERROR "metrics.csv has no data rows (${csv_count} lines)")
endif()
list(GET csv_lines 0 csv_header)
if(NOT csv_header MATCHES "^time_us,")
  message(FATAL_ERROR "metrics.csv header is '${csv_header}', expected time_us,...")
endif()

file(STRINGS "${OUT_DIR}/metrics.prom" prom_types REGEX "^# TYPE bcl_")
list(LENGTH prom_types prom_count)
if(prom_count EQUAL 0)
  message(FATAL_ERROR "metrics.prom has no '# TYPE bcl_...' lines")
endif()

file(READ "${OUT_DIR}/congestion.json" congestion)
if(NOT congestion MATCHES "\"util\"" OR NOT congestion MATCHES "\"queue_wait_us\"")
  message(FATAL_ERROR "congestion.json is missing link gauges")
endif()

file(READ "${OUT_DIR}/postmortem.json" postmortem)
foreach(key reason timeline top_links sessions)
  if(NOT postmortem MATCHES "\"${key}\"")
    message(FATAL_ERROR "postmortem.json is missing \"${key}\"")
  endif()
endforeach()

message(STATUS "exports validated: json ok, csv ${csv_count} lines, "
               "${prom_count} prometheus series")
