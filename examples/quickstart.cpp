// Quickstart: the raw BCL API in one file.
//
// Builds a 2-node cluster, opens one endpoint (process + port) on each
// node, and demonstrates the three channel types the paper defines:
//   * system channel  — small messages into a FIFO pool,
//   * normal channel  — rendezvous bulk transfer into a posted buffer,
//   * open channel    — remote memory access (RMA) into a bound window.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "bcl/bcl.hpp"

using bcl::BclErr;
using bcl::ChanKind;
using bcl::ChannelRef;
using bcl::Endpoint;
using bcl::PortId;
using sim::Task;
using sim::Time;

namespace {

Task<void> node0_app(sim::Engine& eng, Endpoint& me, PortId peer) {
  // --- 1. small message over the system channel -----------------------------
  auto hello = me.process().alloc(64);
  me.process().fill_pattern(hello, 1);
  const Time t0 = eng.now();
  auto r = co_await me.send_system(peer, hello, 64);
  if (!r.ok()) throw std::runtime_error(bcl::to_string(r.err));
  (void)co_await me.wait_send();
  std::printf("[node0] system-channel send completed at t=%s\n",
              eng.now().str().c_str());

  // --- 2. bulk transfer over a normal channel --------------------------------
  // Wait for the receiver to post its buffer and tell us which channel.
  auto ev = co_await me.wait_recv();
  auto note = co_await me.copy_out_system(ev);
  const std::uint16_t channel = static_cast<std::uint16_t>(note.at(0));
  auto bulk = me.process().alloc(256 * 1024);
  me.process().fill_pattern(bulk, 2);
  const Time t1 = eng.now();
  r = co_await me.send(peer, ChannelRef{ChanKind::kNormal, channel}, bulk,
                       bulk.len);
  if (!r.ok()) throw std::runtime_error(bcl::to_string(r.err));
  (void)co_await me.wait_send();
  std::printf("[node0] 256KB staged on NIC after %s\n",
              (eng.now() - t1).str().c_str());
  (void)t0;

  // --- 3. RMA write into the receiver's open window ----------------------------
  auto patch = me.process().alloc(4096);
  me.process().fill_pattern(patch, 3);
  r = co_await me.rma_write(peer, /*dst_channel=*/0, /*dst_offset=*/8192,
                            patch, patch.len);
  if (!r.ok()) throw std::runtime_error(bcl::to_string(r.err));
  (void)co_await me.wait_send();
  // Tell the receiver the RMA landed.
  (void)co_await me.send_system(peer, hello, 1);
  (void)co_await me.wait_send();
}

Task<void> node1_app(sim::Engine& eng, Endpoint& me, PortId peer) {
  // --- 1. receive the small message ------------------------------------------
  auto ev = co_await me.wait_recv();
  auto data = co_await me.copy_out_system(ev);
  std::printf("[node1] got %zu system-channel bytes at t=%s\n", data.size(),
              eng.now().str().c_str());

  // --- 2. rendezvous: post a buffer, announce the channel, receive ------------
  auto bulk = me.process().alloc(256 * 1024);
  const std::uint16_t channel = 5;
  if (co_await me.post_recv(channel, bulk) != BclErr::kOk) {
    throw std::runtime_error("post_recv failed");
  }
  auto note = me.process().alloc(1);
  const std::byte ch_byte[1] = {std::byte{channel}};
  me.process().poke(note, 0, ch_byte);
  (void)co_await me.send_system(peer, note, 1);
  (void)co_await me.wait_send();
  ev = co_await me.wait_recv();
  std::printf("[node1] got %zu bulk bytes, pattern %s\n", ev.len,
              me.process().check_pattern(bulk, 2) ? "intact" : "CORRUPT");

  // --- 3. bind an RMA window and wait for the writer ---------------------------
  auto window = me.process().alloc(64 * 1024);
  if (co_await me.bind_open(0, window) != BclErr::kOk) {
    throw std::runtime_error("bind_open failed");
  }
  ev = co_await me.wait_recv();  // writer's completion note
  (void)co_await me.copy_out_system(ev);
  std::vector<std::byte> probe(16);
  me.process().peek(window, 8192, probe);
  std::printf("[node1] RMA window updated remotely: first byte 0x%02x\n",
              static_cast<unsigned>(probe[0]));
}

}  // namespace

int main() {
  std::printf("BCL quickstart: 2 nodes over the Myrinet model\n");
  bcl::ClusterConfig cfg;
  cfg.nodes = 2;
  bcl::BclCluster cluster{cfg};
  auto& a = cluster.open_endpoint(0);
  auto& b = cluster.open_endpoint(1);
  cluster.engine().spawn(node0_app(cluster.engine(), a, b.id()));
  cluster.engine().spawn(node1_app(cluster.engine(), b, a.id()));
  cluster.engine().run();
  std::printf("done at simulated t=%s\n",
              cluster.engine().now().str().c_str());
  return 0;
}
