// Metrics dashboard: a loaded 8-node cluster with the full observability
// pipeline on — registry counters/gauges across every layer, the periodic
// Sampler snapshotting gauges into a time series, and a Perfetto trace
// with spans, counter tracks, and per-message flow arrows.
//
// Writes six files into the output directory (default "."):
//   metrics.json     — registry snapshot (counters/gauges/summaries/histograms)
//   metrics.prom     — the same registry in Prometheus text exposition
//   metrics.csv      — the Sampler's gauge time series, one row per tick
//   trace.json       — chrome://tracing / ui.perfetto.dev trace with flows
//   congestion.json  — per-link congestion gauges (utilization, queue wait,
//                      wormhole blocking, occupancy high-water, retransmit
//                      heat), ranked hottest-first
//   postmortem.json  — a sample on-demand Postmortem snapshot of node 0
//                      (the same dump a peer-unreachable diagnosis emits)
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/examples/metrics_dashboard [out_dir]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "bcl/bcl.hpp"

using bcl::BclErr;
using bcl::Endpoint;
using bcl::PortId;
using sim::Task;

namespace {

constexpr int kNodes = 8;
constexpr int kRounds = 4;

// Each node streams system-channel messages of growing size to two
// neighbours (ring and stride-3), so every link, DMA engine, and event
// queue in the cluster sees traffic.
Task<void> sender(Endpoint& me, PortId ring, PortId stride) {
  auto buf = me.process().alloc(4096);
  for (int r = 0; r < kRounds; ++r) {
    const std::size_t bytes = static_cast<std::size_t>(64) << r;
    auto s = co_await me.send_system(ring, buf, bytes);
    if (!s.ok()) throw std::runtime_error(bcl::to_string(s.err));
    (void)co_await me.wait_send();
    s = co_await me.send_system(stride, buf, bytes / 2);
    if (!s.ok()) throw std::runtime_error(bcl::to_string(s.err));
    (void)co_await me.wait_send();
  }
}

// Every node is the ring target of one sender and the stride target of
// another: 2 * kRounds messages each.
Task<void> receiver(Endpoint& me) {
  for (int i = 0; i < 2 * kRounds; ++i) {
    auto ev = co_await me.wait_recv();
    (void)co_await me.copy_out_system(ev);
  }
}

// One bulk rendezvous transfer (node 0 -> node 4) so fragmentation and the
// scatter DMA path show up in the counters too.  It runs on a second port
// per node so its completion events never race the streaming receivers.
Task<void> bulk_sender(Endpoint& me, PortId dst) {
  auto buf = me.process().alloc(64 * 1024);
  auto s = co_await me.send(dst, bcl::ChannelRef{bcl::ChanKind::kNormal, 0},
                            buf, buf.len);
  if (!s.ok()) throw std::runtime_error(bcl::to_string(s.err));
  (void)co_await me.wait_send();
}

Task<void> bulk_receiver(Endpoint& me) {
  auto buf = me.process().alloc(64 * 1024);
  if (co_await me.post_recv(0, buf) != BclErr::kOk) {
    throw std::runtime_error("post_recv failed");
  }
  (void)co_await me.wait_recv();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

// Per-link congestion gauges as JSON, hottest link first (same ranking the
// post-mortem uses: retransmit heat, then queueing, then utilization).
std::string congestion_json(const std::vector<hw::Fabric::LinkStats>& links) {
  std::string out = "{\"links\": [";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto& l = links[i];
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "%s\n  {\"name\": \"%s\", \"util\": %.4f, \"busy_us\": %.3f, "
        "\"queue_wait_us\": %.3f, \"blocked_us\": %.3f, \"queue_hwm\": %zu, "
        "\"packets\": %llu, \"retx_packets\": %llu, \"dropped\": %llu}",
        i == 0 ? "" : ",", l.name.c_str(), l.util, l.busy_us, l.queue_wait_us,
        l.blocked_us, l.queue_hwm, static_cast<unsigned long long>(l.packets),
        static_cast<unsigned long long>(l.retx_packets),
        static_cast<unsigned long long>(l.dropped));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  bcl::ClusterConfig cfg;
  cfg.nodes = kNodes;
  bcl::BclCluster cluster{cfg};

  std::vector<Endpoint*> eps;
  for (int n = 0; n < kNodes; ++n) {
    eps.push_back(&cluster.open_endpoint(static_cast<hw::NodeId>(n)));
  }

  cluster.trace().enable();
  cluster.sampler().set_trace(&cluster.trace());
  cluster.start_sampler();

  for (int n = 0; n < kNodes; ++n) {
    cluster.engine().spawn(sender(*eps[n], eps[(n + 1) % kNodes]->id(),
                                  eps[(n + 3) % kNodes]->id()));
    cluster.engine().spawn(receiver(*eps[n]));
  }
  auto& bulk_rx = cluster.open_endpoint(4);
  auto& bulk_tx = cluster.open_endpoint(0);
  cluster.engine().spawn(bulk_receiver(bulk_rx));
  cluster.engine().spawn(bulk_sender(bulk_tx, bulk_rx.id()));
  cluster.engine().run();

  write_file(out_dir + "/metrics.json", cluster.metrics().to_json());
  write_file(out_dir + "/metrics.prom", cluster.metrics().to_prometheus());
  write_file(out_dir + "/metrics.csv", cluster.sampler().to_csv());
  write_file(out_dir + "/trace.json", cluster.trace().to_chrome_json());

  // Congestion gauges, ranked the way the post-mortem ranks them.
  auto links = cluster.fabric().congestion_report();
  std::sort(links.begin(), links.end(),
            [](const hw::Fabric::LinkStats& a, const hw::Fabric::LinkStats& b) {
              return std::make_tuple(a.retx_packets + a.dropped,
                                     a.queue_wait_us + a.blocked_us, a.util) >
                     std::make_tuple(b.retx_packets + b.dropped,
                                     b.queue_wait_us + b.blocked_us, b.util);
            });
  write_file(out_dir + "/congestion.json", congestion_json(links));

  // A sample post-mortem: the identical dump a real peer-unreachable or
  // collective-timeout diagnosis would capture, taken on demand for node 0.
  const bcl::Postmortem pm =
      bcl::build_postmortem(cluster, 0, "sample-snapshot", /*peer=*/-1,
                            "none (healthy run)", /*top_n=*/8);
  write_file(out_dir + "/postmortem.json", pm.to_json() + "\n");

  std::size_t flows = cluster.trace().flow_events().size();
  std::printf("simulated %s of an %d-node cluster under load\n",
              cluster.engine().now().str().c_str(), kNodes);
  std::printf("  counters:   %zu\n", cluster.metrics().counters().size());
  std::printf("  gauges:     %zu\n", cluster.metrics().gauges().size());
  std::printf("  summaries:  %zu\n", cluster.metrics().summaries().size());
  std::printf("  histograms: %zu\n", cluster.metrics().histograms().size());
  std::printf("  sampler ticks: %zu\n", cluster.sampler().samples());
  std::printf("  trace: %zu spans, %zu counter events, %zu flow events"
              " (%llu dropped at cap)\n",
              cluster.trace().events().size(),
              cluster.trace().counter_events().size(), flows,
              static_cast<unsigned long long>(
                  cluster.trace().dropped_events()));
  std::printf("  hottest links (util / queue_wait_us / hwm):\n");
  for (std::size_t i = 0; i < links.size() && i < 3; ++i) {
    std::printf("    %-10s %.1f%% / %.1f / %zu\n", links[i].name.c_str(),
                100.0 * links[i].util, links[i].queue_wait_us,
                links[i].queue_hwm);
  }
  std::printf("  flight recorder (node 0): %llu events, %zu retained\n",
              static_cast<unsigned long long>(
                  cluster.node(0).mcp().recorder().total()),
              cluster.node(0).mcp().recorder().size());
  std::printf("wrote metrics.json / metrics.prom / metrics.csv / trace.json"
              " / congestion.json / postmortem.json to %s\n",
              out_dir.c_str());
  return 0;
}
