// Master/worker task farm over mini-PVM: adaptive quadrature of
// f(x) = 4/(1+x^2) on [0,1] (which integrates to pi), with the master
// handing interval chunks to workers on demand — the classic PVM usage
// pattern on machines like DAWNING-3000.
//
// Run: ./build/examples/pvm_taskfarm
#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

constexpr int kWorkers = 6;
constexpr int kChunks = 48;
constexpr int kSamplesPerChunk = 2000;

constexpr int kTagJob = 1;
constexpr int kTagResult = 2;
constexpr int kTagStop = 3;

double f(double x) { return 4.0 / (1.0 + x * x); }

sim::Task<void> master(minipvm::Pvm& me, double& result) {
  int next_chunk = 0;
  int outstanding = 0;
  double sum = 0.0;
  // Prime every worker with one chunk.
  for (int w = 1; w <= kWorkers && next_chunk < kChunks; ++w) {
    me.initsend();
    const std::vector<std::int32_t> job{next_chunk++};
    co_await me.pkint(job);
    co_await me.send(w, kTagJob);
    ++outstanding;
  }
  // Farm: collect a result, hand out the next chunk to whoever answered.
  while (outstanding > 0) {
    const int worker = co_await me.recv(minipvm::kAnyTid, kTagResult);
    std::vector<double> part(1);
    co_await me.upkdouble(part);
    sum += part[0];
    --outstanding;
    if (next_chunk < kChunks) {
      me.initsend();
      const std::vector<std::int32_t> job{next_chunk++};
      co_await me.pkint(job);
      co_await me.send(worker, kTagJob);
      ++outstanding;
    } else {
      me.initsend();
      co_await me.send(worker, kTagStop);
    }
  }
  result = sum;
}

sim::Task<void> worker(minipvm::Pvm& me) {
  for (;;) {
    (void)co_await me.recv(0, minipvm::kAnyTag);
    // A stop message carries no payload.
    if (me.recv_len() == 0) co_return;
    std::vector<std::int32_t> job(1);
    co_await me.upkint(job);
    const double lo = static_cast<double>(job[0]) / kChunks;
    const double hi = static_cast<double>(job[0] + 1) / kChunks;
    // Midpoint rule over the chunk; charge compute time on our CPU.
    co_await me.process().cpu().busy(
        sim::Time::ns(4.0 * kSamplesPerChunk));
    const double h = (hi - lo) / kSamplesPerChunk;
    double part = 0.0;
    for (int i = 0; i < kSamplesPerChunk; ++i) {
      part += f(lo + (i + 0.5) * h) * h;
    }
    me.initsend();
    const std::vector<double> res{part};
    co_await me.pkdouble(res);
    co_await me.send(0, kTagResult);
  }
}

}  // namespace

int main() {
  std::printf("PVM task farm: %d workers, %d chunks, estimating pi\n",
              kWorkers, kChunks);
  cluster::WorldConfig cfg;
  cfg.cluster.nodes = 4;
  cfg.cluster.node.mem_bytes = 48u << 20;
  cluster::World world{cfg, kWorkers + 1};
  double result = 0.0;
  world.engine().spawn(master(world.pvm(0), result));
  for (int w = 1; w <= kWorkers; ++w) {
    world.engine().spawn(worker(world.pvm(w)));
  }
  world.engine().run();
  std::printf("pi ~= %.10f (error %.2e), simulated time %s\n", result,
              std::abs(result - M_PI), world.engine().now().str().c_str());
  return std::abs(result - M_PI) < 1e-6 ? 0 : 1;
}
