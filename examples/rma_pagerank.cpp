// PageRank power iteration using BCL open-channel RMA.
//
// Each rank owns a slice of the rank vector, binds it to an open channel,
// and every iteration reads the remote slices it needs with rma_read —
// no receiver-side matching at all, which is exactly what open channels
// are for ("other processes are able to read/write memory areas within
// the corresponding buffer", section 2.2).
//
// Run: ./build/examples/rma_pagerank
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "bcl/bcl.hpp"

namespace {

constexpr int kRanksN = 4;        // BCL endpoints
constexpr int kVertsPerRank = 16;
constexpr int kVerts = kRanksN * kVertsPerRank;
constexpr int kIters = 20;
constexpr double kDamping = 0.85;

// Deterministic sparse graph: vertex v links to (v*7+1)%V and (v*13+5)%V.
std::vector<int> out_links(int v) {
  return {(v * 7 + 1) % kVerts, (v * 13 + 5) % kVerts};
}

std::vector<double> serial_pagerank() {
  std::vector<double> pr(kVerts, 1.0 / kVerts), next(kVerts);
  for (int it = 0; it < kIters; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - kDamping) / kVerts);
    for (int v = 0; v < kVerts; ++v) {
      for (const int dst : out_links(v)) {
        next[dst] += kDamping * pr[v] / 2.0;
      }
    }
    pr.swap(next);
  }
  return pr;
}

// A port has ONE receive event queue; applications multiplexing message
// kinds must dispatch events themselves.  Barrier tokens arrive on the
// system channel, RMA-read replies on normal channels — wait for the kind
// we need and stash the rest.
sim::Task<bcl::RecvEvent> next_event_of(bcl::Endpoint& me,
                                        bcl::ChanKind want,
                                        std::deque<bcl::RecvEvent>& stash) {
  for (auto it = stash.begin(); it != stash.end(); ++it) {
    if (it->channel.kind == want) {
      const bcl::RecvEvent ev = *it;
      stash.erase(it);
      co_return ev;
    }
  }
  for (;;) {
    bcl::RecvEvent ev = co_await me.wait_recv();
    if (ev.channel.kind == want) co_return ev;
    stash.push_back(ev);
  }
}

// Coordinator barrier: everyone pings rank 0, rank 0 pings everyone back.
sim::Task<void> rma_barrier(bcl::Endpoint& me, int rank,
                            const std::vector<bcl::PortId>& world,
                            const osk::UserBuffer& token,
                            std::deque<bcl::RecvEvent>& stash) {
  if (rank == 0) {
    for (int r = 1; r < kRanksN; ++r) {
      auto ev = co_await next_event_of(me, bcl::ChanKind::kSystem, stash);
      (void)co_await me.copy_out_system(ev);
    }
    for (int r = 1; r < kRanksN; ++r) {
      (void)co_await me.send_system(world[r], token, 0);
      (void)co_await me.wait_send();
    }
  } else {
    (void)co_await me.send_system(world[0], token, 0);
    (void)co_await me.wait_send();
    auto ev = co_await next_event_of(me, bcl::ChanKind::kSystem, stash);
    (void)co_await me.copy_out_system(ev);
  }
}

sim::Task<void> pagerank_rank(sim::Engine& eng, bcl::Endpoint& me, int rank,
                              std::vector<bcl::PortId> world,
                              std::vector<double>& out) {
  constexpr std::size_t kSliceBytes = kVertsPerRank * sizeof(double);
  // The owned slice, exposed as RMA window 0.
  auto window = me.process().alloc(kSliceBytes);
  std::vector<double> mine(kVertsPerRank, 1.0 / kVerts);
  auto put = [&](const std::vector<double>& v) {
    std::vector<std::byte> raw(kSliceBytes);
    std::memcpy(raw.data(), v.data(), raw.size());
    me.process().poke(window, 0, raw);
  };
  put(mine);
  if (co_await me.bind_open(0, window) != bcl::BclErr::kOk) {
    throw std::runtime_error("bind_open failed");
  }
  auto remote = me.process().alloc(kSliceBytes);  // rma_read landing zone
  auto token = me.process().alloc(1);
  std::deque<bcl::RecvEvent> stash;

  // Everyone's window must be bound before the first read.
  co_await rma_barrier(me, rank, world, token, stash);

  for (int it = 0; it < kIters; ++it) {
    // Pull the whole current vector: our window plus 3 remote slices.
    std::vector<double> pr(kVerts);
    for (int r = 0; r < kRanksN; ++r) {
      std::vector<std::byte> raw(kSliceBytes);
      if (r == rank) {
        me.process().peek(window, 0, raw);
      } else {
        auto res = co_await me.rma_read(world[r], /*dst_channel=*/0,
                                        /*offset=*/0, /*reply_channel=*/1,
                                        remote, kSliceBytes);
        if (!res.ok()) throw std::runtime_error("rma_read failed");
        // The reply lands on our normal channel 1.
        (void)co_await next_event_of(me, bcl::ChanKind::kNormal, stash);
        me.process().peek(remote, 0, raw);
      }
      std::memcpy(pr.data() + r * kVertsPerRank, raw.data(), raw.size());
    }
    // Compute our slice of the next vector.
    co_await me.process().cpu().busy(sim::Time::ns(10.0 * kVerts));
    std::vector<double> next(kVertsPerRank, (1.0 - kDamping) / kVerts);
    for (int v = 0; v < kVerts; ++v) {
      for (const int dst : out_links(v)) {
        if (dst / kVertsPerRank == rank) {
          next[dst % kVertsPerRank] += kDamping * pr[v] / 2.0;
        }
      }
    }
    // Two barriers make the lock-step publish race-free: nobody may
    // update a window while others still read round k, and nobody may
    // read round k+1 before every window holds it.
    co_await rma_barrier(me, rank, world, token, stash);
    mine = next;
    put(mine);
    co_await rma_barrier(me, rank, world, token, stash);
  }
  (void)eng;
  out = mine;
}

}  // namespace

int main() {
  std::printf("RMA PageRank: %d vertices on %d BCL endpoints\n", kVerts,
              kRanksN);
  bcl::ClusterConfig cfg;
  cfg.nodes = 4;
  bcl::BclCluster cluster{cfg};
  std::vector<bcl::Endpoint*> eps;
  std::vector<bcl::PortId> world;
  for (int r = 0; r < kRanksN; ++r) {
    eps.push_back(&cluster.open_endpoint(static_cast<hw::NodeId>(r)));
    world.push_back(eps.back()->id());
  }
  std::vector<std::vector<double>> slices(kRanksN);
  for (int r = 0; r < kRanksN; ++r) {
    cluster.engine().spawn(
        pagerank_rank(cluster.engine(), *eps[r], r, world, slices[r]));
  }
  cluster.engine().run();

  const auto reference = serial_pagerank();
  double max_err = 0;
  for (int r = 0; r < kRanksN; ++r) {
    for (int i = 0; i < kVertsPerRank; ++i) {
      max_err = std::max(max_err, std::abs(slices[r][i] -
                                           reference[r * kVertsPerRank + i]));
    }
  }
  std::printf("max |parallel - serial| = %.2e (%s), simulated time %s\n",
              max_err, max_err < 1e-12 ? "MATCH" : "MISMATCH",
              cluster.engine().now().str().c_str());
  return max_err < 1e-12 ? 0 : 1;
}
