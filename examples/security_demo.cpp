// The security story of the semi-user-level architecture (section 4.4),
// live: a hostile process fires malformed requests at the kernel module
// and RMA windows while two well-behaved tenants keep communicating.
// Every attack is refused with an error code or dropped at the target NIC
// with a counter; the good traffic is unaffected.
//
// Run: ./build/examples/security_demo
#include <cstdio>

#include "bcl/bcl.hpp"

using bcl::BclErr;
using bcl::ChanKind;
using bcl::ChannelRef;
using bcl::Endpoint;
using bcl::PortId;
using osk::UserBuffer;
using sim::Task;
using sim::Time;

namespace {

Task<void> attacker(Endpoint& me, PortId victim, const UserBuffer& stolen) {
  auto buf = me.process().alloc(256);
  struct Attack {
    const char* what;
    BclErr got;
  };
  std::vector<Attack> log;

  auto r = co_await me.send_system(PortId{42, 0}, buf, 256);
  log.push_back({"send to non-existent node 42", r.err});
  r = co_await me.send_system(PortId{victim.node, 500}, buf, 256);
  log.push_back({"send to out-of-range port 500", r.err});
  r = co_await me.send(victim, ChannelRef{ChanKind::kNormal, 9999}, buf, 256);
  log.push_back({"send to out-of-range channel", r.err});
  UserBuffer unmapped{0xdeadb000, 1024, me.process().pid()};
  r = co_await me.send_system(victim, unmapped, 1024);
  log.push_back({"send from unmapped address", r.err});
  auto big = me.process().alloc(16384);
  r = co_await me.send_system(victim, big, 16384);
  log.push_back({"oversized system-channel message", r.err});
  // RMA overrun: locally well-formed, refused at the target NIC.
  r = co_await me.rma_write(victim, 0, 1u << 20, big, 4096);
  log.push_back({"RMA write far past the window", r.err});
  (void)co_await me.wait_send();

  std::printf("\nattacker's log (every line should be refused):\n");
  for (const auto& a : log) {
    std::printf("  %-36s -> %s\n", a.what, bcl::to_string(a.got));
  }
  // Note on pointer forgery: virtual addresses of *other* processes are
  // meaningless here by construction — the kernel translates every send
  // through the caller's own page table, so a "stolen" pointer can only
  // ever reach the attacker's own memory.  That is the design's defense,
  // not a check that fires.
  (void)stolen;
}

Task<void> good_sender(Endpoint& me, PortId dst, int* delivered) {
  auto buf = me.process().alloc(1024);
  me.process().fill_pattern(buf, 7);
  for (int i = 0; i < 10; ++i) {
    auto r = co_await me.send_system(dst, buf, 1024);
    if (!r.ok()) throw std::runtime_error("good traffic failed!");
    (void)co_await me.wait_send();
  }
  (void)delivered;
}

Task<void> good_receiver(Endpoint& me, int& delivered) {
  for (int i = 0; i < 10; ++i) {
    auto ev = co_await me.wait_recv();
    auto data = co_await me.copy_out_system(ev);
    if (data.size() != 1024) throw std::runtime_error("truncated message");
    ++delivered;
  }
}

}  // namespace

int main() {
  std::printf("semi-user-level security demo: 1 attacker, 2 good tenants\n");
  bcl::ClusterConfig cfg;
  cfg.nodes = 2;
  bcl::BclCluster cluster{cfg};
  auto& good_tx = cluster.open_endpoint(0);
  auto& evil = cluster.open_endpoint(0);  // same node as the good sender
  auto& good_rx = cluster.open_endpoint(1);

  // The victim-side RMA window the attacker will try to escape.
  auto window = good_rx.process().alloc(4096);
  cluster.engine().spawn([](Endpoint& rx, const UserBuffer& w) -> Task<void> {
    if (co_await rx.bind_open(0, w) != BclErr::kOk) {
      throw std::runtime_error("bind failed");
    }
  }(good_rx, window));

  auto secret = good_tx.process().alloc(4096);
  int delivered = 0;
  cluster.engine().spawn(attacker(evil, good_rx.id(), secret));
  cluster.engine().spawn(good_sender(good_tx, good_rx.id(), &delivered));
  cluster.engine().spawn(good_receiver(good_rx, delivered));
  cluster.engine().run();

  std::printf("\ngood tenant delivered %d/10 messages\n", delivered);
  std::printf("kernel security rejections on node 0: %llu\n",
              (unsigned long long)cluster.node(0).driver().security_rejects());
  std::printf("RMA violations refused at the victim NIC: %llu\n",
              (unsigned long long)good_rx.port().rma_errors);
  std::printf("victim-node kernel traps: %llu — only its own bind_open "
              "ioctl; receiving 10 messages added none\n",
              (unsigned long long)cluster.node(1).kernel().traps());
  return delivered == 10 ? 0 : 1;
}
