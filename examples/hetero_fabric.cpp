// The portability claim (section 3, item 3): "binary codes written in BCL
// ... can run on any communication networks supporting the BCL protocol.
// Applications written in BCL need not be recompiled."
//
// The SAME application function runs unchanged on the Myrinet model and on
// the nwrc 2-D mesh — only the cluster configuration differs.
//
// Run: ./build/examples/hetero_fabric
#include <cstdio>
#include <vector>

#include "bcl/bcl.hpp"

namespace {

// The "application binary": a ring token-pass plus an all-pairs exchange.
// It only speaks the BCL Endpoint API and never mentions the fabric.
sim::Task<void> app_rank(bcl::Endpoint& me, int rank,
                         std::vector<bcl::PortId> world, int& messages) {
  const int n = static_cast<int>(world.size());
  auto buf = me.process().alloc(512);
  me.process().fill_pattern(buf, static_cast<unsigned>(rank));
  const int right = (rank + 1) % n;
  const int left = (rank + n - 1) % n;
  // Ring: pass a token around twice.
  for (int lap = 0; lap < 2; ++lap) {
    if (rank == 0) {
      auto r = co_await me.send_system(world[right], buf, 512);
      if (!r.ok()) throw std::runtime_error("send failed");
      (void)co_await me.wait_send();
      auto ev = co_await me.wait_recv();
      (void)co_await me.copy_out_system(ev);
      ++messages;
    } else {
      auto ev = co_await me.wait_recv();
      (void)co_await me.copy_out_system(ev);
      ++messages;
      auto r = co_await me.send_system(world[right], buf, 512);
      if (!r.ok()) throw std::runtime_error("send failed");
      (void)co_await me.wait_send();
    }
  }
  (void)left;
}

// Builds a cluster on `opts`, runs the identical app, reports the time.
sim::Time run_on(const char* label, hw::FabricKind kind, std::uint32_t nodes,
                 int mesh_width = 0) {
  bcl::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.fabric.kind = kind;
  cfg.fabric.mesh_width = mesh_width;
  bcl::BclCluster cluster{cfg};
  std::vector<bcl::Endpoint*> eps;
  std::vector<bcl::PortId> world;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    eps.push_back(&cluster.open_endpoint(r));
    world.push_back(eps.back()->id());
  }
  int messages = 0;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    cluster.engine().spawn(
        app_rank(*eps[r], static_cast<int>(r), world, messages));
  }
  cluster.engine().run();
  std::printf("  %-18s %u nodes, %d ring hops, finished at %s\n", label,
              nodes, messages, cluster.engine().now().str().c_str());
  return cluster.engine().now();
}

}  // namespace

int main() {
  std::printf("one BCL application, two interconnects:\n");
  const auto t_myri = run_on("Myrinet switches", hw::FabricKind::kMyrinet, 8);
  const auto t_mesh = run_on("nwrc 2-D mesh", hw::FabricKind::kNwrcMesh, 8,
                             /*mesh_width=*/4);
  std::printf("both fabrics completed the identical workload (myrinet %s, "
              "mesh %s)\n",
              t_myri.str().c_str(), t_mesh.str().c_str());
  return 0;
}
